// Timer-tick machinery in depth: cost accounting, burst stretching,
// cluster alignment under clock offsets, decay cadence, and callout
// ordering guarantees.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kern/kernel.hpp"
#include "sim/choice.hpp"
#include "sim/engine.hpp"

using namespace pasched;
using namespace pasched::sim::literals;
using kern::RunDecision;
using sim::Duration;
using sim::Engine;
using sim::Time;

namespace {

struct Busy final : kern::ThreadClient {
  kern::RunDecision next(Time) override {
    if (done) return RunDecision::block();
    done = true;
    return RunDecision::compute(Duration::sec(1));
  }
  bool done = false;
};

}  // namespace

TEST(KernTicks, TickCostIsAccounted) {
  Engine e;
  kern::Tunables tun;
  tun.tick_cost = Duration::us(4);
  tun.cluster_aligned_ticks = true;
  kern::Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  k.start();
  e.run_until(Time::zero() + Duration::sec(1));
  // 100 ticks of 4 us each.
  EXPECT_EQ(k.accounting().ticks_taken, 100u);
  EXPECT_NEAR(k.accounting().tick_cpu.to_us(), 400.0, 1.0);
}

TEST(KernTicks, SynchronizedTicksPayContentionPremium) {
  kern::Tunables tun;
  tun.tick_cost = Duration::us(4);
  tun.sync_tick_contention = 1.5;
  tun.synchronized_ticks = false;
  EXPECT_EQ(tun.effective_tick_cost().count(), Duration::us(4).count());
  tun.synchronized_ticks = true;
  EXPECT_EQ(tun.effective_tick_cost().count(), Duration::us(6).count());
}

TEST(KernTicks, TickStealsStretchRunningBurst) {
  Engine e;
  kern::Tunables tun;
  tun.tick_cost = Duration::us(100);  // exaggerated for visibility
  tun.context_switch_cost = Duration::ns(1);
  tun.cluster_aligned_ticks = true;
  kern::Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  Busy c;
  kern::ThreadSpec ts;
  ts.name = "busy";
  ts.base_priority = 60;
  ts.fixed_priority = true;
  ts.home_cpu = 0;
  kern::Thread& t = k.create_thread(ts, c);
  k.start();
  k.wake(t);
  // A 1 s burst with 100 ticks of 100 us stolen: finishes ~10 ms late.
  e.run_until(Time::zero() + Duration::sec(1) + Duration::ms(5));
  EXPECT_EQ(t.state(), kern::ThreadState::Running) << "still delayed by ticks";
  e.run_until(Time::zero() + Duration::sec(1) + Duration::ms(15));
  EXPECT_EQ(t.state(), kern::ThreadState::Blocked);
  // Only the burst itself is charged to the thread, not the tick handler.
  EXPECT_NEAR(t.total_cpu().to_ms(), 1000.0, 0.1);
}

TEST(KernTicks, ClusterAlignmentCancelsClockOffsets) {
  // Two kernels with different clock offsets: with cluster alignment their
  // tick instants in *global* time coincide only when offsets are zero.
  auto tick_times = [](Duration offset) {
    Engine e;
    kern::Tunables tun;
    tun.synchronized_ticks = true;
    tun.cluster_aligned_ticks = true;
    kern::Kernel k(e, 0, 1, tun, offset, 0);
    struct Log final : kern::SchedObserver {
      std::vector<Time> ticks;
      void on_tick(Time t, kern::NodeId, kern::CpuId) override {
        ticks.push_back(t);
      }
    } log;
    k.set_observer(&log);
    k.start();
    e.run_until(Time::zero() + 50_ms);
    return log.ticks;
  };
  const auto synced = tick_times(Duration::zero());
  const auto skewed = tick_times(Duration::ms(3));
  ASSERT_GE(synced.size(), 4u);
  ASSERT_GE(skewed.size(), 4u);
  // Aligned in local time: the skewed node's global tick times are shifted
  // by exactly the (uncorrected) offset — this is why the co-scheduler must
  // sync clocks first.
  EXPECT_EQ(synced[0].count() % Duration::ms(10).count(), 0);
  EXPECT_EQ((skewed[0].count() + Duration::ms(3).count()) %
                Duration::ms(10).count(),
            0);
}

TEST(KernTicks, BigTickReducesTickCount) {
  auto ticks_in_second = [](int big) {
    Engine e;
    kern::Tunables tun;
    tun.big_tick = big;
    tun.cluster_aligned_ticks = true;
    kern::Kernel k(e, 0, 2, tun, Duration::zero(), 0);
    k.start();
    e.run_until(Time::zero() + Duration::sec(1));
    return k.accounting().ticks_taken;
  };
  EXPECT_EQ(ticks_in_second(1), 200u);   // 2 cpus x 100 Hz
  EXPECT_EQ(ticks_in_second(25), 8u);    // 2 cpus x 4 Hz
}

TEST(KernTicks, CalloutsFireInDueThenFifoOrder) {
  Engine e;
  kern::Tunables tun;
  tun.big_tick = 25;
  tun.cluster_aligned_ticks = true;
  kern::Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  std::vector<int> order;
  k.start();
  // All due before the first 250 ms tick, registered out of due order.
  k.schedule_callout(0, Time::zero() + 30_ms, [&] { order.push_back(2); });
  k.schedule_callout(0, Time::zero() + 10_ms, [&] { order.push_back(1); });
  k.schedule_callout(0, Time::zero() + 30_ms, [&] { order.push_back(3); });
  k.schedule_callout(0, Time::zero() + 40_ms, [&] { order.push_back(4); });
  e.run_until(Time::zero() + 300_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(KernTicks, CalloutMayRescheduleItself) {
  Engine e;
  kern::Tunables tun;
  tun.cluster_aligned_ticks = true;
  kern::Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  int fires = 0;
  std::function<void()> periodic = [&] {
    ++fires;
    if (fires < 5)
      k.schedule_callout(0, k.local_now() + 10_ms, [&] { periodic(); });
  };
  k.schedule_callout(0, Time::zero() + 10_ms, [&] { periodic(); });
  k.start();
  e.run_until(Time::zero() + 200_ms);
  EXPECT_EQ(fires, 5);
}

TEST(KernTicks, DecayHalvesRecentCpuEachPeriod) {
  Engine e;
  kern::Tunables tun;
  tun.decay_period = Duration::sec(1);
  tun.cluster_aligned_ticks = true;
  kern::Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  Busy c;
  kern::ThreadSpec ts;
  ts.name = "w";
  ts.base_priority = 60;
  ts.fixed_priority = false;
  ts.home_cpu = 0;
  kern::Thread& t = k.create_thread(ts, c);
  k.start();
  k.wake(t);
  // The burst (stretched slightly by tick costs) completes just after the
  // 1 s decay point, so the first halving it sees is the one at 2 s.
  e.run_until(Time::zero() + Duration::ms(2050));
  const auto after_decay = t.recent_cpu();
  EXPECT_LT(after_decay.count(), Duration::ms(700).count());
  EXPECT_GT(after_decay.count(), Duration::ms(300).count());
  // Several idle decay periods later the penalty has largely evaporated.
  e.run_until(Time::zero() + Duration::sec(8));
  EXPECT_LT(t.recent_cpu().count(), Duration::ms(20).count());
  EXPECT_LE(t.effective_priority(), 63);
}

TEST(KernTicks, TickPhaseChoicePointShiftsBootSkew) {
  // With a ChoiceSource installed and unaligned ticks, the node's boot-time
  // tick skew becomes an explorable bucket: bucket b shifts every tick by
  // b/kTickPhaseBuckets of the interval (10 ms / 4 buckets = 2.5 ms).
  struct Scripted final : sim::ChoiceSource {
    std::size_t bucket = 0;
    std::vector<std::string> tags;
    std::size_t choose(std::size_t n, const char* tag) override {
      tags.emplace_back(tag);
      return bucket < n ? bucket : 0;
    }
  };
  auto first_tick = [](std::size_t bucket, std::vector<std::string>* tags) {
    Engine e;
    Scripted src;
    src.bucket = bucket;
    e.set_choice_source(&src);
    kern::Tunables tun;
    tun.synchronized_ticks = true;       // no per-CPU stagger on top
    tun.cluster_aligned_ticks = false;   // the choice point's gate
    kern::Kernel k(e, 0, 1, tun, Duration::zero(), /*tick_phase_seed=*/0);
    struct Log final : kern::SchedObserver {
      std::vector<Time> ticks;
      void on_tick(Time t, kern::NodeId, kern::CpuId) override {
        ticks.push_back(t);
      }
    } log;
    k.set_observer(&log);
    k.start();
    e.run_until(Time::zero() + 30_ms);
    if (tags != nullptr) *tags = src.tags;
    EXPECT_FALSE(log.ticks.empty());
    return log.ticks.empty() ? Time::zero() : log.ticks.front();
  };
  std::vector<std::string> tags;
  EXPECT_EQ(first_tick(0, &tags).count(), Duration::ms(10).count());
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0], "kern.tick_phase");
  EXPECT_EQ(first_tick(2, nullptr).count(), Duration::ms(5).count());
  EXPECT_EQ(first_tick(1, nullptr).count(),
            (Duration::ms(2) + Duration::us(500)).count());
}

TEST(KernTicks, AlignedTicksIgnoreChoiceSource) {
  // cluster_aligned_ticks configs must contribute no tick-phase branches.
  struct Counting final : sim::ChoiceSource {
    int calls = 0;
    std::size_t choose(std::size_t, const char*) override {
      ++calls;
      return 0;
    }
  } src;
  Engine e;
  e.set_choice_source(&src);
  kern::Tunables tun;
  tun.cluster_aligned_ticks = true;
  kern::Kernel k(e, 0, 1, tun, Duration::zero(), 0);
  k.start();
  e.run_until(Time::zero() + 30_ms);
  EXPECT_EQ(src.calls, 0);
}

TEST(KernTicks, StaggerSpreadsCpuPhasesEvenly) {
  Engine e;
  kern::Tunables tun;
  tun.synchronized_ticks = false;
  tun.cluster_aligned_ticks = true;
  kern::Kernel k(e, 0, 10, tun, Duration::zero(), 0);
  struct Log final : kern::SchedObserver {
    std::vector<std::pair<Time, int>> ticks;
    void on_tick(Time t, kern::NodeId, kern::CpuId c) override {
      ticks.emplace_back(t, c);
    }
  } log;
  k.set_observer(&log);
  k.start();
  e.run_until(Time::zero() + 11_ms);
  // The paper's example: on a 10-way MP, CPU i ticks at x + i ms.
  ASSERT_GE(log.ticks.size(), 10u);
  for (const auto& [t, c] : log.ticks)
    EXPECT_EQ(t.count() % Duration::ms(10).count(),
              Duration::ms(1).count() * c);
}
