// PASCHED_CHECK must compile to nothing when validation is off: no condition
// evaluation, no message construction, no throw. Validation is force-
// disabled for this translation unit only (macro-level, ODR-safe — see
// test_check_macros.cpp for the mirror image).
#undef PASCHED_VALIDATE_ENABLED
#define PASCHED_VALIDATE_ENABLED 0
#include "check/check.hpp"
#include "race/domain.hpp"

#include <gtest/gtest.h>

#include <string>

TEST(CheckMacrosOff, FailingCheckIsANoOp) {
  EXPECT_NO_THROW(PASCHED_CHECK(false));
  EXPECT_NO_THROW(PASCHED_CHECK_MSG(false, "never materialises"));
}

TEST(CheckMacrosOff, ConditionIsNotEvaluated) {
  int evals = 0;
  // srclint-ok(PSL404): this test exists to pin the non-evaluation.
  PASCHED_CHECK(++evals > 0);
  EXPECT_EQ(evals, 0);
}

TEST(CheckMacrosOff, MessageIsNotBuilt) {
  int msg_builds = 0;
  auto msg = [&] {
    ++msg_builds;
    return std::string("expensive");
  };
  PASCHED_CHECK_MSG(false, msg());
  EXPECT_EQ(msg_builds, 0);
}

TEST(CheckMacrosOff, OwnershipAssertsAreUnevaluated) {
  // The ownership asserts share PASCHED_CHECK's off-mode contract: the
  // whole call sits in an unevaluated sizeof, so argument expressions run
  // zero times — while staying parsed and type-checked against the real
  // on_access/assert_write_domain signatures.
  static pasched::race::Owned owned;
  int calls = 0;
  auto pick = [&]() -> const pasched::race::Owned& {
    ++calls;
    return owned;
  };
  // srclint-ok(PSL404): this test exists to pin the non-evaluation.
  PASCHED_ASSERT_OWNED(pick(), "write");
  // srclint-ok(PSL404): this test exists to pin the non-evaluation.
  PASCHED_ASSERT_DOMAIN((++calls, 0), "label", 0, "write");
  EXPECT_EQ(calls, 0);
}

TEST(CheckMacrosOff, OffExpansionIsAConstantExpression) {
  // Zero codegen at every optimization level: the expansion must be usable
  // where only a compile-time constant could fold away entirely.
  int probes = 0;
  PASCHED_CHECK(++probes > 0);        // srclint-ok(PSL404): pins the contract
  PASCHED_CHECK_MSG(--probes < 0, "n/a");  // srclint-ok(PSL404): same
  EXPECT_EQ(probes, 0);
}

TEST(CheckMacrosOff, AlwaysVariantStillFires) {
  // Explicit audit entry points (check::Auditor, Engine::check_consistent)
  // stay active in every build; only the hot-path macros compile out.
  EXPECT_THROW(PASCHED_CHECK_ALWAYS(false), pasched::check::CheckError);
  EXPECT_NO_THROW(PASCHED_CHECK_ALWAYS(true));
}
