// PASCHED_CHECK must compile to nothing when validation is off: no condition
// evaluation, no message construction, no throw. Validation is force-
// disabled for this translation unit only (macro-level, ODR-safe — see
// test_check_macros.cpp for the mirror image).
#undef PASCHED_VALIDATE_ENABLED
#define PASCHED_VALIDATE_ENABLED 0
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <string>

TEST(CheckMacrosOff, FailingCheckIsANoOp) {
  EXPECT_NO_THROW(PASCHED_CHECK(false));
  EXPECT_NO_THROW(PASCHED_CHECK_MSG(false, "never materialises"));
}

TEST(CheckMacrosOff, ConditionIsNotEvaluated) {
  int evals = 0;
  PASCHED_CHECK(++evals > 0);
  EXPECT_EQ(evals, 0);
}

TEST(CheckMacrosOff, MessageIsNotBuilt) {
  int msg_builds = 0;
  auto msg = [&] {
    ++msg_builds;
    return std::string("expensive");
  };
  PASCHED_CHECK_MSG(false, msg());
  EXPECT_EQ(msg_builds, 0);
}

TEST(CheckMacrosOff, AlwaysVariantStillFires) {
  // Explicit audit entry points (check::Auditor, Engine::check_consistent)
  // stay active in every build; only the hot-path macros compile out.
  EXPECT_THROW(PASCHED_CHECK_ALWAYS(false), pasched::check::CheckError);
  EXPECT_NO_THROW(PASCHED_CHECK_ALWAYS(true));
}
