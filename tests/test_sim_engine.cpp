#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

using namespace pasched::sim;
using namespace pasched::sim::literals;

TEST(Time, ArithmeticAndComparison) {
  const Time t0 = Time::zero();
  const Time t1 = t0 + 5_ms;
  EXPECT_EQ((t1 - t0).count(), 5'000'000);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(Duration::us(2) * 3, 6_us);
  EXPECT_EQ(10_ms / 4_ms, 2);
  EXPECT_EQ((10_ms % 4_ms).count(), Duration::ms(2).count());
  EXPECT_NEAR(Duration::from_seconds(1.5).to_ms(), 1500.0, 1e-9);
}

TEST(Time, AlignUp) {
  const Time t = Time::from_ns(10'500'000);  // 10.5 ms
  EXPECT_EQ(t.align_up(10_ms).count(), 20'000'000);
  EXPECT_EQ(t.align_up(10_ms, 1_ms).count(), 11'000'000);
  // Already on the boundary stays put.
  EXPECT_EQ(Time::from_ns(20'000'000).align_up(10_ms).count(), 20'000'000);
  // Phase larger than period is reduced mod period.
  EXPECT_EQ(t.align_up(10_ms, 21_ms).count(), 11'000'000);
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(Time::zero() + 30_us, [&] { order.push_back(3); });
  e.schedule_at(Time::zero() + 10_us, [&] { order.push_back(1); });
  e.schedule_at(Time::zero() + 20_us, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, SameTimestampIsFifo) {
  Engine e;
  std::vector<int> order;
  const Time t = Time::zero() + 5_us;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(t, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  int fired = 0;
  const EventId id = e.schedule_at(Time::zero() + 1_ms, [&] { ++fired; });
  EXPECT_TRUE(e.pending(id));
  e.cancel(id);
  EXPECT_FALSE(e.pending(id));
  e.cancel(id);  // double-cancel is a no-op
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, CancelFromInsideHandler) {
  Engine e;
  int fired = 0;
  EventId victim = e.schedule_at(Time::zero() + 2_ms, [&] { ++fired; });
  e.schedule_at(Time::zero() + 1_ms, [&] { e.cancel(victim); });
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, HandlerMayScheduleMore) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) e.schedule_after(1_us, [&] { chain(); });
  };
  e.schedule_after(1_us, [&] { chain(); });
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now().count(), 5'000);
}

TEST(Engine, RunUntilAdvancesClockToDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(Time::zero() + 10_ms, [&] { ++fired; });
  EXPECT_TRUE(e.run_until(Time::zero() + 5_ms));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(e.now().count(), Duration::ms(5).count());
  EXPECT_TRUE(e.run_until(Time::zero() + 20_ms));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now().count(), Duration::ms(20).count());
}

TEST(Engine, StopInterruptsRun) {
  Engine e;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    e.schedule_at(Time::zero() + Duration::us(i), [&] {
      if (++fired == 3) e.stop();
    });
  e.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.events_pending(), 7u);
}

TEST(Engine, SchedulingInPastThrows) {
  Engine e;
  e.schedule_at(Time::zero() + 1_ms, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(Time::zero(), [] {}), std::logic_error);
}

TEST(Engine, SlotReuseDoesNotConfuseCancellation) {
  Engine e;
  int fired_a = 0, fired_b = 0;
  const EventId a = e.schedule_at(Time::zero() + 1_us, [&] { ++fired_a; });
  e.run();
  // Slot of `a` is free now; b likely reuses it.
  const EventId b = e.schedule_at(Time::zero() + 2_us, [&] { ++fired_b; });
  e.cancel(a);  // stale id must not cancel b
  e.run();
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
  (void)b;
}

// -- indexed-heap cancellation & slab growth ----------------------------------
// cancel() is a targeted O(log n) heap removal (Slot::heap_pos backlink),
// not a tombstone: the heap never carries stale entries, so pop cost stays
// O(log live) no matter how many cancellations preceded it.

TEST(Engine, CancelRemovesItsHeapEntryImmediately) {
  Engine e;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 1024; ++i)
    ids.push_back(e.schedule_at(Time::zero() + Duration::us(i + 1),
                                [&] { ++fired; }));
  // Cancel everything but one: a tombstoning engine would keep 1024 heap
  // entries for the next pop to wade through; the indexed heap keeps 1.
  for (int i = 0; i < 1023; ++i) e.cancel(ids[static_cast<size_t>(i)]);
  EXPECT_EQ(e.events_pending(), 1u);
  EXPECT_EQ(e.queue_footprint(), 1u);
  e.check_consistent();
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, FootprintEqualsPendingAfterInterleavedCancels) {
  Engine e;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i)
    ids.push_back(e.schedule_at(Time::zero() + Duration::us(i + 1),
                                [&order, i] { order.push_back(i); }));
  for (int i = 0; i < 500; i += 2) e.cancel(ids[static_cast<size_t>(i)]);
  EXPECT_EQ(e.events_pending(), 250u);
  EXPECT_EQ(e.queue_footprint(), e.events_pending());
  e.check_consistent();
  e.run();
  ASSERT_EQ(order.size(), 250u);
  for (std::size_t k = 0; k < order.size(); ++k)
    EXPECT_EQ(order[k], static_cast<int>(2 * k + 1));
}

TEST(Engine, SlabGrowthPreservesFifoAcrossChunks) {
  // 300 same-timestamp events force several slab growths (64, then
  // doubling) mid-scheduling; FIFO order must survive the chunked free
  // list exactly as it did the legacy one-slot-at-a-time growth.
  Engine e;
  std::vector<int> order;
  const Time t = Time::zero() + 5_us;
  for (int i = 0; i < 300; ++i)
    e.schedule_at(t, [&order, i] { order.push_back(i); });
  e.check_consistent();
  e.run();
  ASSERT_EQ(order.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, DrainReleasesEverySlotAndHeapEntry) {
  Engine e;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(e.schedule_at(Time::zero() + Duration::us(i + 1), [] {}));
  for (int i = 0; i < 100; i += 3) e.cancel(ids[static_cast<size_t>(i)]);
  e.drain();
  EXPECT_EQ(e.events_pending(), 0u);
  EXPECT_EQ(e.queue_footprint(), 0u);
  e.check_consistent();
  // The slab is intact and reusable after teardown.
  int fired = 0;
  e.schedule_at(Time::zero() + 1_ms, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, PendingHashUnaffectedByCancelledHistory) {
  // The model checker's visited-set digest must see through cancellation:
  // a schedule+cancel detour converges to the same pending set, so two
  // engines with identical live events hash equal regardless of history.
  Engine a;
  a.schedule_at(Time::zero() + 10_us, [] {});
  a.schedule_at(Time::zero() + 20_us, [] {});

  Engine b;
  const EventId detour = b.schedule_at(Time::zero() + 99_us, [] {});
  b.schedule_at(Time::zero() + 10_us, [] {});
  b.cancel(detour);
  b.schedule_at(Time::zero() + 20_us, [] {});

  EXPECT_EQ(a.pending_hash(), b.pending_hash());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  Rng a(7);
  Rng child1 = a.fork(3);
  (void)a.next_u64();
  (void)a.next_u64();
  Rng a2(7);
  Rng child2 = a2.fork(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
    const auto k = r.uniform_int(-5, 5);
    EXPECT_GE(k, -5);
    EXPECT_LE(k, 5);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.03);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng r(13);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(r.lognormal_med(5.0, 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[10000], 5.0, 0.15);
}

TEST(Rng, JitteredStaysWithinBand) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = r.jittered(Duration::ms(10), 0.2);
    EXPECT_GE(d.count(), 8'000'000);
    EXPECT_LE(d.count(), 12'000'000);
  }
}
