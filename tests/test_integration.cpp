// End-to-end integration: the paper's headline relationships must hold on
// small-but-nontrivial configurations (kept small so the suite stays fast).
#include <gtest/gtest.h>

#include "apps/aggregate_trace.hpp"
#include "apps/ale3d_proxy.hpp"
#include "apps/channels.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "util/stats.hpp"

using namespace pasched;
using sim::Duration;

namespace {

struct Outcome {
  double mean_us;
  double max_us;
  double cv;
};

Outcome run_agg(int nodes, int tpn, bool proto, std::uint64_t seed,
                int calls = 400) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(nodes);
  cfg.cluster.seed = seed;
  cfg.cluster.node.tunables =
      proto ? core::prototype_kernel() : core::vanilla_kernel();
  cfg.job.ntasks = nodes * tpn;
  cfg.job.tasks_per_node = tpn;
  cfg.job.seed = seed + 7;
  cfg.use_coscheduler = proto;
  cfg.cosched = core::paper_cosched();
  if (proto) cfg.job.mpi.polling_interval = Duration::sec(400);
  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = calls;
  at.warmup = Duration::sec(6);
  core::Simulation sim(cfg, apps::aggregate_trace(at));
  const auto r = sim.run();
  EXPECT_TRUE(r.completed);
  const auto& rec = sim.job().channel(apps::kChanAllreduce).recorded_us;
  const util::Summary s(rec);
  return Outcome{s.mean(), s.max(), s.cv()};
}

}  // namespace

TEST(Integration, PrototypeBeatsVanillaAtScale) {
  const Outcome vanilla = run_agg(12, 16, false, 101);
  const Outcome proto = run_agg(12, 16, true, 101);
  EXPECT_GT(vanilla.mean_us / proto.mean_us, 1.15)
      << "parallel-aware scheduling must speed up the collective";
  EXPECT_GT(vanilla.cv / (proto.cv + 1e-9), 2.0)
      << "and remove the extreme variability";
  EXPECT_GT(vanilla.max_us / proto.max_us, 2.0);
}

TEST(Integration, FifteenTasksPerNodeAbsorbsDaemons) {
  const Outcome full = run_agg(8, 16, false, 202);
  const Outcome spare = run_agg(8, 15, false, 202);
  EXPECT_GT(full.mean_us, spare.mean_us)
      << "leaving a CPU idle must improve vanilla performance";
  EXPECT_GT(full.max_us, spare.max_us);
}

TEST(Integration, CollectiveMeanGrowsSuperLogarithmicallyOnVanilla) {
  const Outcome small = run_agg(4, 16, false, 303);
  const Outcome large = run_agg(16, 16, false, 303);
  // Ideal log2 growth from 64 -> 256 tasks is 16/12 ≈ 1.33x; interference
  // must push it well beyond that.
  EXPECT_GT(large.mean_us / small.mean_us, 1.5);
}

TEST(Integration, NaiveCoschedulingHurtsIoBoundApp) {
  auto run_ale = [](int mode) {
    core::SimulationConfig cfg;
    // Cross-node I/O starvation needs enough nodes that some node's tasks
    // spin in the barrier while another still waits on its remote shards.
    cfg.cluster = cluster::presets::frost(20);
    cfg.cluster.seed = 77;
    cfg.job.ntasks = 320;
    cfg.job.tasks_per_node = 16;
    cfg.job.seed = 78;
    cfg.horizon = Duration::sec(600);
    apps::Ale3dConfig app;
    app.timesteps = 30;
    app.checkpoint_every = 5;  // I/O phases sprinkled through the run
    if (mode == 0) {  // vanilla
      cfg.use_coscheduler = false;
      app.detach_for_io = false;
    } else if (mode == 1) {  // naive
      cfg.cluster.node.tunables = core::prototype_kernel();
      cfg.use_coscheduler = true;
      cfg.cosched = core::paper_cosched();
      app.detach_for_io = false;
    } else {  // tuned
      cfg.cluster.node.tunables = core::prototype_kernel();
      cfg.use_coscheduler = true;
      cfg.cosched = core::io_aware_cosched(40);
      app.detach_for_io = true;
    }
    // A short window so co-scheduling engages within this brief run.
    cfg.cosched.period = Duration::sec(2);
    core::Simulation sim(cfg, apps::ale3d_proxy(app));
    const auto r = sim.run();
    EXPECT_TRUE(r.completed);
    return r.elapsed.to_seconds();
  };
  const double vanilla = run_ale(0);
  const double naive = run_ale(1);
  const double tuned = run_ale(2);
  EXPECT_GT(naive, vanilla * 1.2) << "naive co-scheduling starves I/O";
  EXPECT_LT(tuned, naive) << "the tuned priorities fix the regression";
  EXPECT_LT(tuned, vanilla * 1.1) << "tuned must be at worst ~par with vanilla";
}

TEST(Integration, UnsyncedClocksDegradeCoscheduling) {
  auto run_sync = [](bool synced) {
    core::SimulationConfig cfg;
    cfg.cluster = cluster::presets::frost(8);
    cfg.cluster.seed = 55;
    if (!synced) cfg.cluster.node.max_clock_offset = Duration::sec(8);
    cfg.cluster.node.tunables = core::prototype_kernel();
    cfg.cluster.node.tunables.cluster_aligned_ticks = synced;
    cfg.job.ntasks = 128;
    cfg.job.tasks_per_node = 16;
    cfg.job.seed = 56;
    cfg.use_coscheduler = true;
    cfg.cosched = core::paper_cosched();
    cfg.cosched.period = Duration::sec(2);
    cfg.cosched.sync_clocks = synced;
    cfg.job.mpi.polling_interval = Duration::sec(400);
    apps::AggregateTraceConfig at;
    at.loops = 1;
    at.calls_per_loop = 1500;
    at.inter_call_compute = Duration::us(1600);
    at.warmup = Duration::sec(14);
    core::Simulation sim(cfg, apps::aggregate_trace(at));
    const auto r = sim.run();
    EXPECT_TRUE(r.completed);
    const auto& rec = sim.job().channel(apps::kChanAllreduce).recorded_us;
    return util::Summary(rec).percentile(99);
  };
  const double synced_p99 = run_sync(true);
  const double unsynced_p99 = run_sync(false);
  EXPECT_GT(unsynced_p99, synced_p99)
      << "without the switch-clock sync, windows drift apart across nodes";
}

TEST(Integration, HealthyDutyCycleDoesNotEvictNodes) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(2);
  cfg.cluster.seed = 66;
  cfg.cluster.node.tunables = core::prototype_kernel();
  cfg.job.ntasks = 32;
  cfg.job.tasks_per_node = 16;
  cfg.use_coscheduler = true;
  cfg.cosched = core::paper_cosched();  // 90% duty: daemons keep their 10%
  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = 2000;
  at.inter_call_compute = Duration::ms(10);  // ~20 s of runtime
  at.warmup = Duration::sec(6);
  core::Simulation sim(cfg, apps::aggregate_trace(at));
  const auto r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.any_node_evicted)
      << "the paper's settled settings must not starve membership daemons";
}
