// Golden-schedule tests for the per-pair window planner. Each case
// hand-derives the null-message fixpoint and the chained-window recurrence
//
//     E_s    = min(next_t_s, min_p (E_p + L_ps))
//     W(1)_s = min_{p != s} (E_p + L_ps)
//     W(j)_s = min_{p != s} (W(j-1)_p + L_ps)
//
// for three fabric shapes — flat (all pairs at the global bound), framed
// (asymmetric pair bounds, the shape a framed interconnect certificate
// yields), and jitter (all six off-diagonal bounds distinct) — and pins the
// planner's output to the exact expected times. The planner is the
// determinism keystone of the partitioned core: every shard recomputes this
// schedule independently, so any drift here breaks bit-identity across
// worker counts.
#include <gtest/gtest.h>

#include <vector>

#include "sim/planner.hpp"

namespace {

using pasched::sim::Duration;
using pasched::sim::PairLookahead;
using pasched::sim::PlannerMode;
using pasched::sim::RoundPlan;
using pasched::sim::Time;
using pasched::sim::WindowPlanner;

constexpr Time us(std::int64_t v) { return Time::from_ns(v * 1000); }

/// Builds a matrix from explicit off-diagonal bounds (row-major, us).
PairLookahead matrix(int shards, std::vector<std::int64_t> bounds_us,
                     std::int64_t global_us) {
  PairLookahead la;
  la.shards = shards;
  la.global = Duration::us(global_us);
  for (const std::int64_t b : bounds_us) la.bounds.push_back(Duration::us(b));
  return la;
}

std::vector<Time> plan_ends(const WindowPlanner& p,
                            const std::vector<Time>& next_t, Time deadline,
                            RoundPlan& out) {
  p.plan(next_t, deadline, 1, 1, out);
  std::vector<Time> ends;
  for (int j = 1; j <= out.length; ++j)
    for (int s = 0; s < out.shards; ++s) ends.push_back(out.end_of(j, s));
  return ends;
}

TEST(Planner, GlobalModeReproducesTheLegacySingleWindow) {
  const WindowPlanner p(PairLookahead::uniform(3, Duration::us(10)),
                        PlannerMode::Global, 8);
  RoundPlan plan;
  const std::vector<Time> ends =
      plan_ends(p, {us(100), us(200), us(300)}, us(1000), plan);
  EXPECT_FALSE(plan.final);
  EXPECT_EQ(plan.length, 1);  // batch is ignored: one window per round
  // Everyone is cut at t0 + L = 110us regardless of their own next event.
  EXPECT_EQ(ends, (std::vector<Time>{us(110), us(110), us(110)}));
}

TEST(Planner, FlatFabricChainsUniformWindows) {
  // All pairs at the global bound: the per-pair schedule degenerates to the
  // legacy window *shape* but still chains `batch` windows per round —
  // that chaining is the whole sync-round reduction on flat fabrics.
  const WindowPlanner p(PairLookahead::uniform(3, Duration::us(10)),
                        PlannerMode::PerPair, 2);
  RoundPlan plan;
  const std::vector<Time> ends =
      plan_ends(p, {us(100), us(100), us(100)}, us(1000), plan);
  EXPECT_EQ(plan.length, 2);
  EXPECT_EQ(ends, (std::vector<Time>{us(110), us(110), us(110),  // W(1)
                                     us(120), us(120), us(120)}));  // W(2)
}

TEST(Planner, FramedFabricGoldenSchedule) {
  // Asymmetric pair bounds: L(0->1) = 30us, L(1->0) = 10us. Shard 0 is
  // gated only by shard 1's slow-to-reach-it horizon and vice versa.
  //   next_t = {100, 101}us  =>  E = {100, 101}  (fixpoint = inputs here)
  //   W(1) = {E1+10, E0+30}           = {111, 130}
  //   W(2) = {W(1)_1+10, W(1)_0+30}   = {140, 141}
  //   W(3) = {W(2)_1+10, W(2)_0+30}   = {151, 170}
  // Every entry beats the legacy global window t0 + 10 = 110us — the
  // per-pair chain runs ahead of the global planner within one round.
  const WindowPlanner p(matrix(2, {0, 30, 10, 0}, 10), PlannerMode::PerPair,
                        3);
  RoundPlan plan;
  const std::vector<Time> ends =
      plan_ends(p, {us(100), us(101)}, us(100'000), plan);
  EXPECT_FALSE(plan.final);
  EXPECT_EQ(plan.length, 3);
  EXPECT_EQ(ends, (std::vector<Time>{us(111), us(130),    // W(1)
                                     us(140), us(141),    // W(2)
                                     us(151), us(170)}));  // W(3)
}

TEST(Planner, JitterFabricGoldenSchedule) {
  // All six off-diagonal bounds distinct (us):
  //     L = [ 0 10 20
  //          15  0 25
  //          30 12  0 ]
  // next_t = {50, 60, 70}us. The fixpoint leaves E = next_t (no bound is
  // short enough to undercut a neighbor), then:
  //   W(1)_0 = min(60+15, 70+30) = 75
  //   W(1)_1 = min(50+10, 70+12) = 60
  //   W(1)_2 = min(50+20, 60+25) = 70
  //   W(2)_0 = min(60+15, 70+30) = 75   (shard 0 is already at its bound)
  //   W(2)_1 = min(75+10, 70+12) = 82
  //   W(2)_2 = min(75+20, 60+25) = 85
  const WindowPlanner p(
      matrix(3, {0, 10, 20, 15, 0, 25, 30, 12, 0}, 10), PlannerMode::PerPair,
      2);
  RoundPlan plan;
  const std::vector<Time> ends =
      plan_ends(p, {us(50), us(60), us(70)}, us(100'000), plan);
  EXPECT_EQ(plan.length, 2);
  EXPECT_EQ(ends, (std::vector<Time>{us(75), us(60), us(70),    // W(1)
                                     us(75), us(82), us(85)}));  // W(2)
}

TEST(Planner, ChainStopsEarlyOnceEveryShardIsPinnedAtTheDeadline) {
  const WindowPlanner p(PairLookahead::uniform(2, Duration::us(10)),
                        PlannerMode::PerPair, 4);
  RoundPlan plan;
  // Deadline 115us: W(1) = 110, W(2) clamps to 115, W(3) would repeat the
  // row exactly — the chain must stop at length 2, not pad no-op windows.
  const std::vector<Time> ends =
      plan_ends(p, {us(100), us(100)}, us(115), plan);
  EXPECT_EQ(plan.length, 2);
  EXPECT_EQ(ends,
            (std::vector<Time>{us(110), us(110), us(115), us(115)}));
}

TEST(Planner, FinalWindowGateMatchesTheLegacyCondition) {
  const WindowPlanner p(matrix(2, {0, 30, 10, 0}, 10), PlannerMode::PerPair,
                        8);
  RoundPlan plan;
  // t0 + global = 110us > deadline 105us: no full window fits, so the round
  // is the deadline-inclusive final window for every shard.
  p.plan({us(100), us(104)}, us(105), 1, 1, plan);
  EXPECT_TRUE(plan.final);
  EXPECT_EQ(plan.length, 0);
}

TEST(Planner, QuantumShrinkIsConservativeAndKeepsProgress) {
  const WindowPlanner p(matrix(2, {0, 30, 10, 0}, 10), PlannerMode::PerPair,
                        2);
  RoundPlan full;
  RoundPlan half;
  const std::vector<Time> next_t = {us(100), us(101)};
  p.plan(next_t, us(100'000), 1, 1, full);
  p.plan(next_t, us(100'000), 1, 2, half);  // fuzzer claims half lookahead
  ASSERT_EQ(half.length, full.length);
  for (int j = 1; j <= full.length; ++j)
    for (int s = 0; s < 2; ++s) {
      // Shrunk windows never reach past the full ones (claiming less
      // lookahead than certified is always safe)...
      EXPECT_LE(half.end_of(j, s).count(), full.end_of(j, s).count());
      // ...and the round still advances past the earliest event.
      EXPECT_GT(half.end_of(j, s).count(), us(100).count());
    }
  // Exact first row under the halved bounds: {E1+5, E0+15} = {106, 115}.
  EXPECT_EQ(half.end_of(1, 0), us(106));
  EXPECT_EQ(half.end_of(1, 1), us(115));
}

TEST(Planner, IdenticalInputsProduceTheIdenticalPlan) {
  // The determinism contract: plan() is a pure function of its arguments.
  // Each shard's worker calls it independently; any divergence desyncs the
  // horizon protocol.
  const WindowPlanner p(
      matrix(3, {0, 10, 20, 15, 0, 25, 30, 12, 0}, 10), PlannerMode::PerPair,
      8);
  RoundPlan a;
  RoundPlan b;
  const std::vector<Time> next_t = {us(50), us(60), us(70)};
  p.plan(next_t, us(400), 1, 1, a);
  p.plan(next_t, us(400), 1, 1, b);
  ASSERT_EQ(a.length, b.length);
  ASSERT_EQ(a.final, b.final);
  for (int j = 1; j <= a.length; ++j)
    for (int s = 0; s < 3; ++s) EXPECT_EQ(a.end_of(j, s), b.end_of(j, s));
}

TEST(Planner, IdleShardsSaturateInsteadOfWrapping) {
  // An idle shard publishes Time::max(); adding a lookahead to that must
  // saturate, not wrap to a negative time. The fixpoint then pulls the idle
  // shard's horizon down to its busy neighbor's reach (E_1 = 100 + 10 =
  // 110us), so W(1) = {E_1 + 10, E_0 + 10} = {120, 110}us — finite, sane
  // windows on both sides instead of wraparound garbage.
  const WindowPlanner p(PairLookahead::uniform(2, Duration::us(10)),
                        PlannerMode::PerPair, 1);
  RoundPlan plan;
  p.plan({us(100), Time::max()}, us(100'000), 1, 1, plan);
  ASSERT_EQ(plan.length, 1);
  EXPECT_EQ(plan.end_of(1, 0), us(120));
  EXPECT_EQ(plan.end_of(1, 1), us(110));
}

}  // namespace
