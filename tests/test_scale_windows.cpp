// Window accounting and the barrier-cost model, plus the runtime half of
// the lookahead certificate on real partitioned runs: clean certification,
// the planted-unsound-bound PSL303 regression, the mode-invariant
// events_at_completion counter, and the end-to-end analyze_scenario driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/diagnostic.hpp"
#include "apps/aggregate_trace.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "scale/lookahead.hpp"
#include "scale/monitor.hpp"
#include "scale/runner.hpp"
#include "scale/windows.hpp"
#include "sim/time.hpp"

using namespace pasched;
using sim::Duration;
using sim::Time;

namespace {

scale::WindowSample sample(std::uint64_t total, std::uint64_t max_shard,
                           std::uint64_t hub) {
  scale::WindowSample s;
  s.total = total;
  s.max_shard = max_shard;
  s.hub = hub;
  return s;
}

core::SimulationConfig scenario(int parallel) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(4);
  cfg.cluster.seed = 11;
  cfg.job.ntasks = 16;
  cfg.job.tasks_per_node = 4;
  cfg.job.seed = 12;
  cfg.parallel = parallel;
  return cfg;
}

mpi::WorkloadFactory workload() {
  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = 12;
  return apps::aggregate_trace(at);
}

}  // namespace

TEST(ScaleWindows, StatsArithmetic) {
  scale::WindowStats w;
  w.shards = 3;
  w.hub_shard = 2;
  w.windows = {sample(10, 6, 2), sample(2, 2, 2), sample(30, 10, 0)};
  w.per_shard = {20, 18, 4};
  EXPECT_EQ(w.n_windows(), 3u);
  EXPECT_EQ(w.total_events(), 42u);
  EXPECT_DOUBLE_EQ(w.mean_events_per_window(), 14.0);
  EXPECT_DOUBLE_EQ(w.median_events_per_window(), 10.0);
  EXPECT_DOUBLE_EQ(w.imbalance(), 20.0 / 14.0);
  EXPECT_DOUBLE_EQ(w.hub_critical_share(), 4.0 / 18.0);
}

TEST(ScaleWindows, StatsDegenerateCases) {
  scale::WindowStats w;
  EXPECT_EQ(w.total_events(), 0u);
  EXPECT_DOUBLE_EQ(w.mean_events_per_window(), 0.0);
  EXPECT_DOUBLE_EQ(w.imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(w.hub_critical_share(), 0.0);
}

TEST(ScaleWindows, SpeedupModelArithmetic) {
  scale::WindowStats w;
  w.shards = 2;
  w.windows = {sample(4, 2, 0), sample(4, 2, 0)};
  scale::SpeedupModel m;
  m.event_cost_ns = 1.0;
  m.barrier_cost_ns = 0.0;
  // T_1 = 8; per window max(max_shard=2, ceil(4/2)=2) = 2 -> T_p = 4.
  EXPECT_DOUBLE_EQ(m.predicted_speedup(w, 2), 2.0);
  // Barriers added: T_p = 4 + 2*2 = 8 -> speedup 1.
  m.barrier_cost_ns = 2.0;
  EXPECT_DOUBLE_EQ(m.predicted_speedup(w, 2), 1.0);
  // A straggler shard caps the window even with infinite workers.
  w.windows = {sample(4, 4, 0)};
  m.barrier_cost_ns = 0.0;
  EXPECT_DOUBLE_EQ(m.predicted_speedup(w, 64), 1.0);
  EXPECT_DOUBLE_EQ(m.predicted_speedup({}, 8), 1.0);
}

TEST(ScaleWindows, CleanRunCertifiesTheHonestMatrix) {
  const core::SimulationConfig cfg = scenario(/*parallel=*/1);
  core::Simulation sim(cfg, workload());
  ASSERT_NE(sim.sharded(), nullptr);
  scale::RunMonitor mon(
      scale::build_lookahead_matrix(cfg.cluster.fabric, cfg.cluster.nodes),
      *sim.sharded());
  sim.sharded()->set_monitor(&mon);
  const auto res = sim.run();
  mon.finalize();

  EXPECT_TRUE(res.completed);
  EXPECT_GT(mon.windows().n_windows(), 0u);
  EXPECT_GT(mon.posts_checked(), 0u);
  EXPECT_EQ(mon.violations(), 0u);
  EXPECT_TRUE(mon.soundness_findings().empty());
  // Every delivery left nonnegative slack against the certificate.
  EXPECT_GE(mon.min_observed_slack(), Duration::zero());
  // The profiled windows account for the run's events.
  EXPECT_EQ(mon.windows().total_events(), res.events);
}

TEST(ScaleWindows, PlantedUnsoundBoundIsCaught) {
  const core::SimulationConfig cfg = scenario(/*parallel=*/1);
  scale::LookaheadMatrix planted =
      scale::build_lookahead_matrix(cfg.cluster.fabric, cfg.cluster.nodes);
  for (int a = 0; a < planted.shards; ++a)
    for (int b = 0; b < planted.shards; ++b)
      if (a != b) planted.set(a, b, planted.at(a, b) * 4);

  core::Simulation sim(cfg, workload());
  ASSERT_NE(sim.sharded(), nullptr);
  scale::RunMonitor mon(planted, *sim.sharded());
  sim.sharded()->set_monitor(&mon);
  (void)sim.run();
  mon.finalize();

  EXPECT_GT(mon.violations(), 0u);
  const auto findings = mon.soundness_findings();
  ASSERT_FALSE(findings.empty());
  for (const auto& d : findings) EXPECT_EQ(d.rule, "PSL303");
  EXPECT_TRUE(analysis::any_errors(findings));
  EXPECT_LT(mon.min_observed_slack(), Duration::zero());
}

TEST(ScaleWindows, EventsAtCompletionIsModeInvariant) {
  // The raw counter differs across modes (partitioned runs drain their
  // final window past the completing event); the normalized below-T_c
  // counter must not.
  const auto legacy = core::Simulation(scenario(0), workload()).run();
  const auto par1 = core::Simulation(scenario(1), workload()).run();
  const auto par2 = core::Simulation(scenario(2), workload()).run();
  ASSERT_TRUE(legacy.completed);
  ASSERT_TRUE(par1.completed);
  ASSERT_TRUE(par2.completed);
  EXPECT_EQ(legacy.events_at_completion, par1.events_at_completion);
  EXPECT_EQ(par1.events_at_completion, par2.events_at_completion);
  EXPECT_LE(legacy.events_at_completion, legacy.events);
  EXPECT_LE(par1.events_at_completion, par1.events);
}

TEST(ScaleWindows, AnalyzeScenarioEndToEnd) {
  const auto rep =
      scale::analyze_scenario(scenario(/*parallel=*/1), workload(), "unit");
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.soundness_violations, 0u);
  EXPECT_GT(rep.posts_checked, 0u);
  EXPECT_GT(rep.windows.n_windows(), 0u);
  EXPECT_GT(rep.workspan.work, Duration::zero());
  EXPECT_GT(rep.workspan.span, Duration::zero());
  EXPECT_GE(rep.workspan.work, rep.workspan.span);
  EXPECT_GT(rep.predicted_speedup_window_model, 0.0);
  // No PSL303 on a clean run; the machine report carries the certificate.
  for (const auto& d : rep.diagnostics()) EXPECT_NE(d.rule, "PSL303");
  const std::string js = rep.json();
  EXPECT_NE(js.find("\"predicted_max_speedup\""), std::string::npos);
  EXPECT_NE(js.find("\"certificate\""), std::string::npos);
  EXPECT_NE(rep.str().find("work/span"), std::string::npos);
}
