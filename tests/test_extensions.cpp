// The implemented §7 future-work extensions: hardware-assisted collectives
// and the MP_PRIORITY / poe.priority admission flow.
#include <gtest/gtest.h>

#include "apps/aggregate_trace.hpp"
#include "apps/channels.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "mpi/collectives.hpp"

using namespace pasched;
using sim::Duration;

namespace {

core::SimulationConfig base_cfg(std::uint64_t seed = 9) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(2);
  cfg.cluster.seed = seed;
  cfg.cluster.node.install_daemons = false;  // sterile timing
  cfg.job.ntasks = 32;
  cfg.job.tasks_per_node = 16;
  cfg.job.mpi.progress_engine = false;
  cfg.job.seed = seed + 1;
  return cfg;
}

apps::AggregateTraceConfig app_cfg(mpi::AllreduceAlg alg, int calls = 40) {
  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = calls;
  at.alg = alg;
  return at;
}

}  // namespace

TEST(HwCollectives, CompletesAndBeatsSoftwareTree) {
  core::SimulationConfig cfg = base_cfg();
  core::Simulation sw(cfg, apps::aggregate_trace(
                               app_cfg(mpi::AllreduceAlg::BinomialTree)));
  ASSERT_TRUE(sw.run().completed);
  core::SimulationConfig cfg2 = base_cfg();
  cfg2.job.mpi.allreduce_alg = mpi::AllreduceAlg::HardwareSwitch;
  core::Simulation hw(cfg2, apps::aggregate_trace(
                                app_cfg(mpi::AllreduceAlg::HardwareSwitch)));
  ASSERT_TRUE(hw.run().completed);
  const double sw_mean = sw.job().channel(apps::kChanAllreduce).all_us.mean();
  const double hw_mean = hw.job().channel(apps::kChanAllreduce).all_us.mean();
  EXPECT_LT(hw_mean, sw_mean / 2.0)
      << "switch offload must beat the 2*log2(N)-step software tree";
  // Still bounded below by one injection + 2 wire hops + combine.
  EXPECT_GT(hw_mean, 20.0);
}

TEST(HwCollectives, EveryCallCompletesExactlyOnce) {
  core::SimulationConfig cfg = base_cfg(21);
  cfg.job.mpi.allreduce_alg = mpi::AllreduceAlg::HardwareSwitch;
  core::Simulation sim(
      cfg, apps::aggregate_trace(app_cfg(mpi::AllreduceAlg::HardwareSwitch, 60)));
  ASSERT_TRUE(sim.run().completed);
  const auto& ch = sim.job().channel(apps::kChanAllreduce);
  EXPECT_EQ(ch.recorded_us.size(), 60u);
  EXPECT_EQ(ch.all_us.count(), 60u * 32u);  // every task, every call
}

TEST(HwCollectives, GatedByTheSlowestContributor) {
  // One laggard rank computes 2 ms extra before each collective: the
  // hardware combine cannot fire early, so everyone's span stretches.
  core::SimulationConfig cfg = base_cfg(31);
  cfg.job.mpi.allreduce_alg = mpi::AllreduceAlg::HardwareSwitch;
  struct Laggard final : mpi::Workload {
    bool refill(const mpi::TaskInfo& info,
                std::vector<mpi::MicroOp>& out) override {
      if (done) return false;
      done = true;
      mpi::append_barrier(out, info.rank, info.size, 0);
      if (info.rank == 5) out.push_back(mpi::MicroOp::compute(Duration::ms(2)));
      out.push_back(mpi::MicroOp::mark_begin(0, 0));
      mpi::append_allreduce(out, info.rank, info.size, 8,
                            mpi::kTagStride, mpi::AllreduceAlg::HardwareSwitch);
      out.push_back(mpi::MicroOp::mark_end(0, 0));
      return true;
    }
    bool done = false;
  };
  core::Simulation sim(cfg, [](int, int) { return std::make_unique<Laggard>(); });
  ASSERT_TRUE(sim.run().completed);
  // Non-laggard tasks' spans include the 2 ms wait for rank 5.
  EXPECT_GT(sim.job().channel(0).all_us.max(), 2000.0);
}

TEST(AdminFlow, MatchingClassEngagesCoscheduling) {
  core::SimulationConfig cfg = base_cfg(41);
  cfg.cluster.node.tunables = core::prototype_kernel();
  cfg.mp_priority = "hpc";
  cfg.uid = 1001;
  cfg.admin = core::AdminFile::parse("hpc:1001:35:105:2:80\n");
  apps::AggregateTraceConfig at = app_cfg(mpi::AllreduceAlg::BinomialTree, 30);
  at.warmup = Duration::sec(3);
  core::Simulation sim(cfg, apps::aggregate_trace(at));
  ASSERT_TRUE(sim.admission().has_value());
  EXPECT_EQ(sim.admission()->favored, 35);
  ASSERT_NE(sim.cosched(), nullptr);
  EXPECT_EQ(sim.cosched()->config().favored, 35);
  EXPECT_EQ(sim.cosched()->config().unfavored, 105);
  EXPECT_EQ(sim.cosched()->config().period.count(),
            Duration::sec(2).count());
  EXPECT_NEAR(sim.cosched()->config().duty, 0.80, 1e-12);
  ASSERT_TRUE(sim.run().completed);
  EXPECT_GT(sim.cosched()->total_stats().windows, 0u);
}

TEST(AdminFlow, MismatchRunsUnscheduledWithAttention) {
  core::SimulationConfig cfg = base_cfg(43);
  cfg.mp_priority = "hpc";
  cfg.uid = 9999;  // not in the file
  cfg.admin = core::AdminFile::parse("hpc:1001:35:105:2:80\n");
  cfg.use_coscheduler = true;  // the request is overridden by non-admission
  core::Simulation sim(cfg,
                       apps::aggregate_trace(
                           app_cfg(mpi::AllreduceAlg::BinomialTree, 10)));
  EXPECT_FALSE(sim.admission().has_value());
  EXPECT_EQ(sim.cosched(), nullptr);
  EXPECT_TRUE(sim.run().completed);
}

TEST(AdminFlow, MpPriorityWithoutAdminFileIsAnError) {
  core::SimulationConfig cfg = base_cfg(47);
  cfg.mp_priority = "hpc";
  EXPECT_THROW(core::Simulation(cfg, apps::aggregate_trace(app_cfg(
                                         mpi::AllreduceAlg::BinomialTree, 1))),
               std::logic_error);
}
