// Fabric latency model, per-pair FIFO ordering, switch clock + sync, node
// clock offsets, and cluster assembly / presets.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "net/clock_sync.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

using namespace pasched;
using namespace pasched::sim::literals;
using sim::Duration;
using sim::Engine;
using sim::Time;

namespace {
net::FabricConfig no_jitter() {
  net::FabricConfig cfg;
  cfg.jitter_frac = 0.0;
  return cfg;
}
}  // namespace

TEST(Fabric, InterNodeLatencyModel) {
  Engine e;
  net::Fabric f(e, no_jitter(), sim::Rng(1));
  Time delivered{};
  f.send(0, 1, 1000, [&] { delivered = e.now(); });
  e.run();
  // 20 us + 1000 * 2 ns = 22 us.
  EXPECT_EQ(delivered.count(), Duration::us(22).count());
  EXPECT_EQ(f.stats().messages, 1u);
  EXPECT_EQ(f.stats().bytes, 1000u);
}

TEST(Fabric, IntraNodeIsSharedMemoryLatency) {
  Engine e;
  net::Fabric f(e, no_jitter(), sim::Rng(1));
  Time delivered{};
  f.send(3, 3, 0, [&] { delivered = e.now(); });
  e.run();
  EXPECT_EQ(delivered.count(), Duration::us(1).count());
  EXPECT_EQ(f.stats().intra_node, 1u);
}

TEST(Fabric, PerPairFifoEvenWithSizeInversion) {
  Engine e;
  net::Fabric f(e, no_jitter(), sim::Rng(1));
  std::vector<int> order;
  // Big message first, small second: naive latency would reorder them.
  f.send(0, 1, 1'000'000, [&] { order.push_back(1); });
  f.send(0, 1, 8, [&] { order.push_back(2); });
  e.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Fabric, DistinctPairsDoNotSerialize) {
  Engine e;
  net::Fabric f(e, no_jitter(), sim::Rng(1));
  std::vector<int> order;
  f.send(0, 1, 1'000'000, [&] { order.push_back(1); });
  f.send(2, 3, 8, [&] { order.push_back(2); });
  e.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // small message on the independent pair wins
}

TEST(Fabric, JitterIsBoundedAndDeterministic) {
  Engine e1, e2;
  net::FabricConfig cfg;
  cfg.jitter_frac = 0.05;
  net::Fabric f1(e1, cfg, sim::Rng(9));
  net::Fabric f2(e2, cfg, sim::Rng(9));
  Time t1{}, t2{};
  f1.send(0, 1, 8, [&] { t1 = e1.now(); });
  f2.send(0, 1, 8, [&] { t2 = e2.now(); });
  e1.run();
  e2.run();
  EXPECT_EQ(t1.count(), t2.count());  // same seed, same jitter
  const double nominal = f1.latency_for(0, 1, 8).to_us();
  EXPECT_GE(static_cast<double>(t1.count()) / 1000.0, nominal * 0.95 - 0.01);
  EXPECT_LE(static_cast<double>(t1.count()) / 1000.0, nominal * 1.05 + 0.01);
}

TEST(Fabric, LinkContentionSerializesIngressBursts) {
  Engine e;
  net::FabricConfig cfg = no_jitter();
  cfg.link_bandwidth = 1e6;  // 1 MB/s: 100 KB takes 100 ms on a link
  net::Fabric f(e, cfg, sim::Rng(1));
  std::vector<Time> arrivals(4);
  // Four different senders converge on node 9: ingress must serialize them.
  for (int s = 0; s < 4; ++s) {
    f.send(s, 9, 100'000, [&, s] { arrivals[static_cast<std::size_t>(s)] = e.now(); });
  }
  e.run();
  std::sort(arrivals.begin(), arrivals.end());
  // First arrives after ~1 transfer, last after ~4 serialized transfers.
  EXPECT_GE((arrivals[3] - arrivals[0]).to_ms(), 250.0);
  EXPECT_GE(arrivals[0].since_epoch().to_ms(), 90.0);
}

TEST(Fabric, LinkContentionOffKeepsLatencyModel) {
  Engine e;
  net::Fabric f(e, no_jitter(), sim::Rng(1));  // link_bandwidth = 0
  std::vector<Time> arrivals(4);
  for (int s = 0; s < 4; ++s) {
    f.send(s, 9, 100'000, [&, s] { arrivals[static_cast<std::size_t>(s)] = e.now(); });
  }
  e.run();
  // Contention-free: everyone arrives at the same nominal latency.
  for (int s = 1; s < 4; ++s)
    EXPECT_EQ(arrivals[static_cast<std::size_t>(s)].count(),
              arrivals[0].count());
}

TEST(Fabric, LinkContentionDistinctDestinationsDoNotInterfere) {
  Engine e;
  net::FabricConfig cfg = no_jitter();
  cfg.link_bandwidth = 1e6;
  net::Fabric f(e, cfg, sim::Rng(1));
  Time a{}, b{};
  f.send(0, 1, 100'000, [&] { a = e.now(); });
  f.send(2, 3, 100'000, [&] { b = e.now(); });
  e.run();
  EXPECT_EQ(a.count(), b.count());  // independent links, no queueing
}

TEST(SwitchClock, ReadsGlobalTime) {
  Engine e;
  net::SwitchClock sw(e);
  e.schedule_at(Time::zero() + 5_ms, [] {});
  e.run();
  EXPECT_EQ(sw.read().count(), e.now().count());
}

TEST(ClockSync, RemovesOffsetToWithinResidual) {
  Engine e;
  net::SwitchClock sw(e);
  kern::LocalClock clock(Duration::ms(73));  // big boot offset
  net::ClockSyncConfig cfg;
  cfg.max_residual_error = 2_us;
  sim::Rng rng(5);
  const Duration residual = net::synchronize(clock, sw, cfg, rng);
  EXPECT_LE(std::abs(residual.count()), Duration::us(2).count());
  EXPECT_EQ(clock.offset().count(), residual.count());
}

TEST(LocalClock, RoundTripsLocalAndGlobal) {
  kern::LocalClock c(Duration::ms(42));
  const Time g = Time::from_ns(1'000'000'000);
  EXPECT_EQ(c.local_of(g).count(), 1'042'000'000);
  EXPECT_EQ(c.global_of(c.local_of(g)).count(), g.count());
}

TEST(Cluster, AssemblesNodesWithDistinctClockOffsets) {
  Engine e;
  cluster::ClusterConfig cfg = cluster::presets::frost(4);
  cfg.seed = 3;
  cluster::Cluster c(e, cfg);
  ASSERT_EQ(c.size(), 4);
  bool any_nonzero = false;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.node(i).kernel().ncpus(), 16);
    if (c.node(i).kernel().clock().offset() != Duration::zero())
      any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero) << "boot offsets should be randomized";
}

TEST(Cluster, SynchronizeClocksZeroesOffsets) {
  Engine e;
  cluster::ClusterConfig cfg = cluster::presets::frost(6);
  cluster::Cluster c(e, cfg);
  const Duration worst = c.synchronize_clocks();
  EXPECT_LE(worst.count(), Duration::us(2).count());
  for (int i = 0; i < c.size(); ++i)
    EXPECT_LE(std::abs(c.node(i).kernel().clock().offset().count()),
              Duration::us(2).count());
}

TEST(Cluster, PresetsMatchTheMachines) {
  EXPECT_EQ(cluster::presets::frost().nodes, 68);
  EXPECT_EQ(cluster::presets::asci_white().nodes, 512);
  EXPECT_EQ(cluster::presets::blue_oak().nodes, 120);
  EXPECT_EQ(cluster::presets::frost().node.ncpus, 16);
  EXPECT_LT(cluster::presets::blue_oak().node.daemons.intensity, 1.0);
}

TEST(Cluster, SterileNodeHasNoDaemons) {
  Engine e;
  cluster::ClusterConfig cfg = cluster::presets::frost(1);
  cfg.node.install_daemons = false;
  cluster::Cluster c(e, cfg);
  EXPECT_EQ(c.node(0).daemons(), nullptr);
  EXPECT_EQ(c.node(0).io_service(), nullptr);
  c.start();
  e.run_until(Time::zero() + 1_s);
  EXPECT_EQ(c.node(0).kernel().accounting().of(kern::ThreadClass::Daemon)
                .count(),
            0);
}

TEST(Cluster, DeterministicAcrossRebuilds) {
  auto run = [] {
    Engine e;
    cluster::ClusterConfig cfg = cluster::presets::frost(2);
    cfg.seed = 11;
    cluster::Cluster c(e, cfg);
    c.start();
    e.run_until(Time::zero() + 5_s);
    return std::pair{e.events_processed(),
                     c.node(0).kernel().accounting()
                         .of(kern::ThreadClass::Daemon).count()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}
