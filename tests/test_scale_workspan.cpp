// Work/span critical-path tests on hand-built traces: independent threads
// halve the span, a send -> recv chain serializes it, blocked time carries
// no weight, and the clock-free HbGraph exposes the same cross edges the
// full vector-clock build does.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/hb.hpp"
#include "scale/workspan.hpp"
#include "sim/time.hpp"
#include "trace/events.hpp"

using namespace pasched;
using sim::Duration;
using sim::Time;

namespace {

Time at_us(std::int64_t us) { return Time::zero() + Duration::us(us); }

trace::Event ev(Time t, trace::EventKind k, int node, int tid) {
  trace::Event e;
  e.t = t;
  e.kind = k;
  e.node = node;
  e.cpu = 0;
  e.tid = tid;
  return e;
}

trace::Event msg(Time t, trace::EventKind k, int node, int tid,
                 std::uint64_t msg_id) {
  trace::Event e = ev(t, k, node, tid);
  e.src_rank = 0;
  e.dst_rank = 1;
  e.msg_id = msg_id;
  return e;
}

scale::WorkSpan analyze(std::vector<trace::Event> events) {
  return scale::work_span(
      analysis::HbGraph::build(std::move(events), /*with_clocks=*/false));
}

}  // namespace

TEST(ScaleWorkSpan, IndependentThreadsHalveTheSpan) {
  // Two threads, each busy for 10us with no cross edges: work 20us, span
  // 10us, ideal speedup 2.
  std::vector<trace::Event> es;
  es.push_back(ev(at_us(0), trace::EventKind::Dispatch, 0, 1));
  es.push_back(ev(at_us(0), trace::EventKind::Dispatch, 1, 2));
  es.push_back(ev(at_us(10), trace::EventKind::Exit, 0, 1));
  es.push_back(ev(at_us(10), trace::EventKind::Exit, 1, 2));
  const scale::WorkSpan ws = analyze(std::move(es));
  EXPECT_EQ(ws.threads, 2);
  EXPECT_EQ(ws.events, 4u);
  EXPECT_EQ(ws.work, Duration::us(20));
  EXPECT_EQ(ws.span, Duration::us(10));
  EXPECT_DOUBLE_EQ(ws.predicted_max_speedup(), 2.0);
}

TEST(ScaleWorkSpan, SendRecvChainSerializes) {
  // Thread 1 computes 10us then sends; thread 2 receives and computes
  // another 10us. The cross edge chains the segments: work == span == 20us,
  // speedup 1 — message order, not thread count, limits this history.
  std::vector<trace::Event> es;
  es.push_back(ev(at_us(0), trace::EventKind::Dispatch, 0, 1));
  es.push_back(msg(at_us(10), trace::EventKind::MsgSend, 0, 1, 7));
  es.push_back(ev(at_us(10), trace::EventKind::Dispatch, 1, 2));
  es.push_back(msg(at_us(10), trace::EventKind::MsgRecv, 1, 2, 7));
  es.push_back(ev(at_us(20), trace::EventKind::Exit, 1, 2));
  const scale::WorkSpan ws = analyze(std::move(es));
  EXPECT_EQ(ws.work, Duration::us(20));
  EXPECT_EQ(ws.span, Duration::us(20));
  EXPECT_DOUBLE_EQ(ws.predicted_max_speedup(), 1.0);
  // The critical path runs through the send into the receiving thread.
  ASSERT_GE(ws.critical_path.size(), 4u);
  EXPECT_EQ(ws.critical_path.front(), 0u);
  EXPECT_EQ(ws.critical_path.back(), 4u);
}

TEST(ScaleWorkSpan, BlockedTimeCarriesNoWeight) {
  // Busy 10us, blocked 10us, busy 10us: work 20us, not 30us.
  std::vector<trace::Event> es;
  es.push_back(ev(at_us(0), trace::EventKind::Dispatch, 0, 1));
  es.push_back(ev(at_us(10), trace::EventKind::Block, 0, 1));
  es.push_back(ev(at_us(20), trace::EventKind::Dispatch, 0, 1));
  es.push_back(ev(at_us(30), trace::EventKind::Exit, 0, 1));
  const scale::WorkSpan ws = analyze(std::move(es));
  EXPECT_EQ(ws.work, Duration::us(20));
  EXPECT_EQ(ws.span, Duration::us(20));
}

TEST(ScaleWorkSpan, SpinWaitingAccruesSpan) {
  // MsgRecvWait does not release the CPU (the paper's spin-wait receive):
  // the segment through the wait still counts as occupied time.
  std::vector<trace::Event> es;
  es.push_back(ev(at_us(0), trace::EventKind::Dispatch, 0, 1));
  es.push_back(msg(at_us(5), trace::EventKind::MsgRecvWait, 0, 1, 9));
  es.push_back(msg(at_us(15), trace::EventKind::MsgRecv, 0, 1, 9));
  es.push_back(ev(at_us(20), trace::EventKind::Exit, 0, 1));
  const scale::WorkSpan ws = analyze(std::move(es));
  EXPECT_EQ(ws.work, Duration::us(20));
  EXPECT_EQ(ws.span, Duration::us(20));
}

TEST(ScaleWorkSpan, CrossPredMatchesSendToRecv) {
  std::vector<trace::Event> es;
  es.push_back(ev(at_us(0), trace::EventKind::Dispatch, 0, 1));
  es.push_back(msg(at_us(1), trace::EventKind::MsgSend, 0, 1, 42));
  es.push_back(ev(at_us(1), trace::EventKind::Dispatch, 1, 2));
  es.push_back(msg(at_us(2), trace::EventKind::MsgRecv, 1, 2, 42));
  es.push_back(msg(at_us(3), trace::EventKind::MsgRecv, 1, 2, 777));
  const analysis::HbGraph g =
      analysis::HbGraph::build(std::move(es), /*with_clocks=*/false);
  EXPECT_EQ(g.cross_pred(3), 1);   // matched FIFO per msg_id
  EXPECT_EQ(g.cross_pred(4), -1);  // the 777 send fell outside the slice
  EXPECT_EQ(g.cross_pred(0), -1);
  EXPECT_EQ(g.cross_pred(1), -1);
}
