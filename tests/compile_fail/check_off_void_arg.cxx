// Compile-FAIL fixture (ctest WILL_FAIL inverts the compiler's exit code):
// a side-effect-only void expression inside PASCHED_CHECK is exactly the
// validated/release divergence PSL404 exists to prevent. The OFF-mode
// expansion funnels the argument through static_cast<bool> inside an
// unevaluated sizeof, so this must be rejected at compile time — if this
// file ever compiles, the compile-time capture regressed.
// (.cxx extension: this file is driven by -fsyntax-only, never built or
// swept by run-clang-tidy.)
#undef PASCHED_VALIDATE_ENABLED
#define PASCHED_VALIDATE_ENABLED 0
#include "check/check.hpp"

void poke();

void hazard() {
  PASCHED_CHECK(poke());  // void argument: must not convert to bool
}
