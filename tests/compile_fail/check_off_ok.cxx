// Compile-PASS companion to check_off_void_arg.cxx: guards the harness
// itself. If include paths or flags break, this file fails too and the
// WILL_FAIL test above can no longer pass vacuously.
#undef PASCHED_VALIDATE_ENABLED
#define PASCHED_VALIDATE_ENABLED 0
#include "check/check.hpp"

bool armed();

void fine(int x) {
  PASCHED_CHECK(x >= 0);
  PASCHED_CHECK_MSG(armed(), "message is parsed but never built");
}
