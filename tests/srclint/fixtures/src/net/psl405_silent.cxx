// PSL405 negative fixture: the deterministic counterparts.
namespace pasched::net {

// Silent: randomness flows from the seeded engine Rng.
int jitter(sim::Rng& rng) { return static_cast<int>(rng.next_u64() % 5); }

// Silent: time flows from the engine clock.
sim::Time stamp(const sim::EventContext& ctx) { return ctx.now(); }

// Silent: unordered lookup is fine; only iteration leaks bucket order.
long peek(const std::unordered_map<int, long>& inflight, int key) {
  const auto it = inflight.find(key);
  return it == inflight.end() ? 0 : it->second;
}

// Silent: iterating a deterministically ordered copy.
void collect(const std::unordered_map<int, long>& inflight,
             const std::vector<int>& sorted_keys, std::vector<long>& out) {
  for (const int k : sorted_keys) out.push_back(inflight.at(k));
}

}  // namespace pasched::net
