// Planted PSL405 violations: nondeterminism sources inside the
// deterministic core (mirrored src/net/ path puts this in scope).
namespace pasched::net {

// FIRE: libc randomness — unseeded, process-global.
int jitter() { return std::rand() % 5; }

// FIRE: wall-clock time leaks host scheduling into the trace.
long stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

// FIRE: unordered-container iteration order is implementation-defined.
void collect(std::unordered_map<int, long>& inflight, std::vector<long>& out) {
  for (const auto& kv : inflight) out.push_back(kv.second);
}

}  // namespace pasched::net
