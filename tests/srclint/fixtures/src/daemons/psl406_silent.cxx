// PSL406 negative fixture: the blessed shapes.
namespace pasched::daemons {

// Silent: std::thread::id is a query type, not a thread creation.
std::thread::id current_worker();

// Silent: concurrency-free scheduling through the shard's context.
void enqueue(sim::EventContext& ctx, sim::Duration d) {
  ctx.schedule_after(d, [] {});
}

// Silent: hardware_concurrency is a query, not a creation.
unsigned parallelism_hint() { return std::thread::hardware_concurrency(); }

}  // namespace pasched::daemons
