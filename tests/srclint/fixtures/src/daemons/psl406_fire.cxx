// Planted PSL406 violations: ad-hoc thread creation outside the
// ShardedEngine worker pool, plus a detached thread.
namespace pasched::daemons {

void spawn(Worker& w) {
  // FIRE: raw std::thread outside the worker pool.
  std::thread t([&w] { w.run(); });
  // FIRE: detached — nothing joins it, it outlives the barrier protocol.
  t.detach();
}

void spawn_posix(Worker& w) {
  // FIRE: raw pthread.
  pthread_create(&w.tid, nullptr, run_trampoline, &w);
}

}  // namespace pasched::daemons
