// Planted PSL402 violations: a shard-resident type with no ownership tag
// and a mutable field that is neither atomic nor ownership-guarded.
namespace pasched::kern {

// FIRE (class): Kernel carries no race::Owned member.
class Kernel {
 public:
  int ticks() const {
    ++ticks_;  // writable through const access from any worker
    return ticks_;
  }

 private:
  // FIRE (field): mutable, non-atomic, unguarded.
  mutable int ticks_ = 0;
};

}  // namespace pasched::kern
