// PSL402 negative fixture: the annotated shard-resident shape.
namespace pasched::kern {

class Kernel {
 public:
  void start() { PASCHED_ASSERT_OWNED(owned_, "start"); }
  int ticks() const { return ticks_.load(); }

 private:
  race::Owned owned_;  // ownership tag: bound to the shard at construction
  mutable std::atomic<int> ticks_{0};  // mutable but atomic: allowed
};

// Silent: not in the shard-resident name set at all.
struct TickStats {
  mutable int cached = 0;
};

}  // namespace pasched::kern
