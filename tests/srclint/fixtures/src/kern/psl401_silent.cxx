// PSL401 negative fixture: the blessed patterns must stay silent.
namespace pasched::kern {

class Scheduler {
 public:
  // Silent: const observation of the engine is not a seam violation.
  void observe(const sim::Engine& engine) { obs_ = &engine; }

  // Silent: posting through the EventContext seam.
  void arm(sim::EventContext& ctx, Duration d) {
    ctx.schedule_after(d, [] {});
  }

  // Silent: non-engine receivers may expose the same mutator names.
  void drive(Clock& clock) { clock.step(); }

 private:
  const sim::Engine* obs_ = nullptr;
};

}  // namespace pasched::kern
