// Planted PSL401 violations: kernel-model code reaching for the raw engine.
// Fixtures are lexed, never compiled (.cxx keeps them out of every build
// and clang-tidy sweep); the mirrored src/kern/ path puts them inside the
// rule's enforcement scope.
namespace pasched::kern {

class Scheduler {
 public:
  // FIRE: binds a mutable reference to the raw engine.
  void bind(sim::Engine& engine) { engine_ = &engine; }

  // FIRE: posts through the engine instead of the EventContext seam.
  void arm(Time t) { engine_->schedule_at(t, [] {}); }

 private:
  // FIRE: retains a mutable engine pointer.
  sim::Engine* engine_ = nullptr;
};

}  // namespace pasched::kern
