// Planted PSL403 violations: a PASCHED_HOT function detouring through the
// allocator, a lock, an exception, a blocking wait, and stdio.
namespace pasched::sim {

PASCHED_HOT void fire_path(Queue& q) {
  // FIRE: heap allocation on the per-event path.
  Event* e = new Event();
  // FIRE: lock declared on the per-event path.
  std::mutex mu;
  // FIRE: explicit lock acquisition.
  q.mu.lock();
  // FIRE: throw on the hot path.
  if (!q.ok()) throw QueueError{};
  // FIRE: blocking wait.
  q.cv.wait_for(q.lk, timeout());
  // FIRE: I/O on the hot path.
  std::printf("fired %p\n", static_cast<void*>(e));
  q.push(e);
}

}  // namespace pasched::sim
