// PSL403 negative fixture: straight-line hot path plus an unannotated cold
// path that may do anything.
namespace pasched::sim {

PASCHED_HOT void fire_path(Queue& q, Event* slab) {
  // Silent: placement new reuses preallocated storage — no heap traffic.
  Event* e = ::new (static_cast<void*>(slab)) Event();
  q.push(e);
}

// Declaration only: the marker binds at the definition, never here.
PASCHED_HOT void drain_path(Queue& q);

void cold_path(Queue& q) {
  // Silent: not PASCHED_HOT — per-window code locks and allocates freely.
  const std::lock_guard<std::mutex> lk(q.mu);
  q.push(new Event());
}

}  // namespace pasched::sim
