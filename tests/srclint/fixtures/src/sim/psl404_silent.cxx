// PSL404 negative fixture: pure observations, a lambda capture-default
// (the one legal '=' shape), and one honored suppression.
namespace pasched::sim {

void audit(const State& s, int probe) {
  // Silent: pure comparisons.
  PASCHED_CHECK(s.count >= 0);
  PASCHED_CHECK_MSG(s.total == s.count * s.step, "pure observation");
  // Silent: [=] is a capture default, not an assignment.
  PASCHED_CHECK([=] { return probe >= 0; }());
  // srclint-ok(PSL404): fixture exercises an honored suppression.
  PASCHED_CHECK(++probe > 0);
}

}  // namespace pasched::sim
