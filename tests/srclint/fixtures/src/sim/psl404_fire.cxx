// Planted PSL404 violations: side effects inside vanishing-check arguments.
// Under -DPASCHED_VALIDATE=OFF these expressions never run, so the
// validated and release builds diverge.
namespace pasched::sim {

void audit(State& s) {
  // FIRE: increment inside the checked condition.
  PASCHED_CHECK(++s.count > 0);
  // FIRE: compound assignment inside the checked condition.
  PASCHED_CHECK_MSG(s.total += s.step, "accumulates while observing");
  // FIRE: assignment inside an ownership assert's arguments.
  PASCHED_ASSERT_DOMAIN(s.owner = 0, "fixture", 0, "write");
}

}  // namespace pasched::sim
