// Seed-stability regression for the fabric's per-source jitter streams.
//
// Partitioning the engine changed how fabric ports are seeded: instead of a
// shared Rng advanced in send order, every source node's Port derives its
// stream as a pure function of the fabric seed and the source id
// (port_seed_base_ + golden-ratio * (src + 1)), so which shard happens to
// send first cannot change any stream. These tests pin that contract two
// ways: structurally (per-source delivery times are invariant under send
// order) and exactly (golden FNV-1a digests over the integer delivery
// timestamps for fixed seeds — any change to the derivation, the jitter
// draw, or the FIFO bump moves every digest and must be a conscious,
// golden-updating decision, because it silently invalidates cross-version
// digest comparisons in pasched-audit).
//
// Goldens are integers (nanosecond timestamps hashed with FNV-1a): the
// jitter path uses only IEEE multiply/truncate, no libm, so the values are
// portable across conforming toolchains.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

using namespace pasched;

namespace {

constexpr int kNodes = 4;
constexpr int kSendsPerSource = 4;

/// Issues kSendsPerSource 1 KiB sends from every source in `order` (all at
/// t = 0, destinations round-robin) and returns each source's delivery
/// timestamps in its own send order. FIFO-per-pair keeps a source's
/// deliveries in send order, so this is exactly the jitter stream.
std::map<int, std::vector<std::int64_t>> streams(
    std::uint64_t seed, const std::vector<int>& order) {
  sim::Engine engine;
  net::Fabric fabric(engine, net::FabricConfig{}, sim::Rng(seed));
  std::map<int, std::vector<std::int64_t>> out;
  for (const int src : order) {
    for (int k = 0; k < kSendsPerSource; ++k) {
      const int dst = (src + 1 + k) % kNodes;
      fabric.send(src, dst, 1024, [&out, &engine, src] {
        out[src].push_back(engine.now().since_epoch().count());
      });
    }
  }
  engine.run();
  return out;
}

std::uint64_t fnv1a(const std::map<int, std::vector<std::int64_t>>& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& [src, times] : s) {
    mix(static_cast<std::uint64_t>(src));
    for (const std::int64_t t : times) mix(static_cast<std::uint64_t>(t));
  }
  return h;
}

}  // namespace

TEST(FabricSeedStability, PerSourceStreamsAreSendOrderIndependent) {
  const auto forward = streams(42, {0, 1, 2, 3});
  const auto shuffled = streams(42, {3, 1, 0, 2});
  ASSERT_EQ(forward.size(), static_cast<std::size_t>(kNodes));
  EXPECT_EQ(forward, shuffled);
}

TEST(FabricSeedStability, DistinctSourcesDrawDistinctStreams) {
  const auto s = streams(42, {0, 1, 2, 3});
  // Same base latency and sizes, different port streams: the jitter offsets
  // must differ between sources (a shared-stream regression would make the
  // first draws collide for every source).
  ASSERT_EQ(s.at(0).size(), static_cast<std::size_t>(kSendsPerSource));
  EXPECT_NE(s.at(0), s.at(1));
  EXPECT_NE(s.at(1), s.at(2));
  EXPECT_NE(s.at(2), s.at(3));
}

TEST(FabricSeedStability, SeedSelectsEveryStream) {
  EXPECT_NE(fnv1a(streams(1, {0, 1, 2, 3})), fnv1a(streams(2, {0, 1, 2, 3})));
}

TEST(FabricSeedStability, GoldenDigestsArePinned) {
  // Pinned on the derivation port_seed_base + 0x9e3779b97f4a7c15 * (src+1)
  // with xoshiro256** streams and 2% multiplicative jitter. A failure here
  // means per-source streams moved: every stored pasched-audit digest is
  // invalidated, and the change needs a changelog entry, not just a golden
  // bump.
  const std::map<std::uint64_t, std::uint64_t> golden = {
      {1ULL, 0xd76963f5c36b7cbbULL},
      {42ULL, 0xfef4a8e5ea3e2763ULL},
      {0xC0FFEEULL, 0x71db568af2b525d6ULL},
  };
  for (const auto& [seed, want] : golden) {
    EXPECT_EQ(fnv1a(streams(seed, {0, 1, 2, 3})), want)
        << "seed " << seed << ": actual digest 0x" << std::hex
        << fnv1a(streams(seed, {0, 1, 2, 3}));
  }
}
