// Unit tests for the shard-ownership annotation layer (race/domain.hpp):
// the thread-local domain scope, the Owned tag's check/stamp semantics in
// both enforcement modes (throw vs. sink), the container-form
// assert_write_domain, and the epoch packing shared with the monitor.
//
// The Owned/sink machinery is always present (only the macro forms compile
// away), so everything here runs in both validation modes except the final
// macro-form test, which is gated on PASCHED_VALIDATE_ENABLED.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "race/domain.hpp"

using namespace pasched;

namespace {

/// Minimal sink: collects violations verbatim and serves a settable clock.
struct CollectingSink final : race::ViolationSink {
  std::vector<race::Violation> seen;
  std::uint64_t clock = 0;
  void report(const race::Violation& v) override { seen.push_back(v); }
  [[nodiscard]] std::uint64_t clock_of(race::Domain) noexcept override {
    return clock;
  }
};

}  // namespace

TEST(RaceDomain, DefaultContextIsFree) {
  EXPECT_EQ(race::current_domain(), race::kFreeContext);
}

TEST(RaceDomain, ScopedDomainSetsRestoresAndNests) {
  {
    const race::ScopedDomain outer(2);
    EXPECT_EQ(race::current_domain(), 2);
    {
      const race::ScopedDomain inner(5);
      EXPECT_EQ(race::current_domain(), 5);
    }
    EXPECT_EQ(race::current_domain(), 2);
  }
  EXPECT_EQ(race::current_domain(), race::kFreeContext);
}

TEST(RaceDomain, FreeContextPassesEveryCheck) {
  race::Owned o;
  o.bind(3, "test.Object", 7);
  // No ScopedDomain active: setup/teardown/wrapup contexts may touch
  // anything.
  EXPECT_NO_THROW(o.on_access("mutate"));
  EXPECT_NO_THROW(race::assert_write_domain(3, "test.Buffer", 7, "record"));
}

TEST(RaceDomain, UnboundObjectPassesFromAnyDomain) {
  const race::Owned o;  // never bound: hand-built fixture
  const race::ScopedDomain sd(1);
  EXPECT_NO_THROW(o.on_access("mutate"));
  EXPECT_NO_THROW(race::assert_write_domain(race::kUnbound, "test.Buffer", 0,
                                            "record"));
}

TEST(RaceDomain, OwnerAccessPasses) {
  race::Owned o;
  o.bind(2, "test.Object", 1);
  const race::ScopedDomain sd(2);
  EXPECT_NO_THROW(o.on_access("mutate"));
  EXPECT_NO_THROW(race::assert_write_domain(2, "test.Buffer", 1, "record"));
}

TEST(RaceDomain, ForeignAccessThrowsWithFullAttribution) {
  race::Owned o;
  o.bind(0, "kern.Kernel", 4);
  const race::ScopedDomain sd(3);
  try {
    o.on_access("wake");
    FAIL() << "expected check::CheckError";
  } catch (const check::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("kern.Kernel[4]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("domain 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("domain 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'wake'"), std::string::npos) << msg;
  }
}

TEST(RaceDomain, AssertWriteDomainThrowsOnForeignAccess) {
  const race::ScopedDomain sd(1);
  EXPECT_THROW(
      race::assert_write_domain(0, "trace.EventLog.bucket", 0, "record"),
      check::CheckError);
}

TEST(RaceDomain, SinkSwitchesToCollectAndContinue) {
  CollectingSink sink;
  const race::SinkScope scope(&sink);
  race::Owned o;
  o.bind(0, "mpi.Task", 9);
  const race::ScopedDomain sd(2);
  EXPECT_NO_THROW(o.on_access("deposit"));  // collected, not thrown
  race::assert_write_domain(1, "trace.Tracer.node", 1, "slot");
  ASSERT_EQ(sink.seen.size(), 2U);
  EXPECT_STREQ(sink.seen[0].label, "mpi.Task");
  EXPECT_EQ(sink.seen[0].id, 9);
  EXPECT_EQ(sink.seen[0].owner, 0);
  EXPECT_EQ(sink.seen[0].accessor, 2);
  EXPECT_STREQ(sink.seen[0].what, "deposit");
  EXPECT_STREQ(sink.seen[1].label, "trace.Tracer.node");
  EXPECT_EQ(sink.seen[1].owner, 1);
}

TEST(RaceDomain, SinkScopeClearsOnExit) {
  CollectingSink sink;
  {
    const race::SinkScope scope(&sink);
    EXPECT_EQ(race::sink(), &sink);
  }
  EXPECT_EQ(race::sink(), nullptr);
}

TEST(RaceDomain, OwnerAccessStampsEpochForLaterAttribution) {
  CollectingSink sink;
  const race::SinkScope scope(&sink);
  race::Owned o;
  o.bind(1, "kern.Kernel", 1);
  sink.clock = 42;
  {
    const race::ScopedDomain sd(1);
    o.on_access("kick");  // owner: stamps (domain 1, clock 42)
  }
  {
    const race::ScopedDomain sd(0);
    o.on_access("kick");  // foreign: reported with the stamped epoch
  }
  ASSERT_EQ(sink.seen.size(), 1U);
  EXPECT_EQ(sink.seen[0].last_domain, 1);
  EXPECT_EQ(sink.seen[0].last_clock, 42U);
}

TEST(RaceDomain, FirstAccessCarriesNoEpoch) {
  CollectingSink sink;
  const race::SinkScope scope(&sink);
  race::Owned o;
  o.bind(1, "kern.Kernel", 1);
  const race::ScopedDomain sd(0);
  o.on_access("kick");  // foreign, but the object was never touched before
  ASSERT_EQ(sink.seen.size(), 1U);
  EXPECT_EQ(sink.seen[0].last_domain, race::kUnbound);
  EXPECT_EQ(sink.seen[0].last_clock, 0U);
}

TEST(RaceDomain, EpochCodecRoundTrips) {
  for (const race::Domain d : {race::kUnbound, race::kFreeContext, 0, 1, 64}) {
    for (const std::uint64_t c : {std::uint64_t{0}, std::uint64_t{1},
                                  std::uint64_t{1} << 40}) {
      const std::uint64_t e = race::EpochCodec::pack(d, c);
      EXPECT_NE(e, 0U);  // 0 is reserved for "never accessed"
      EXPECT_EQ(race::EpochCodec::domain_of(e), d);
      EXPECT_EQ(race::EpochCodec::clock_of(e), c);
    }
  }
}

#if PASCHED_VALIDATE_ENABLED
TEST(RaceDomain, MacroFormsForwardToTheCheckers) {
  race::Owned o;
  o.bind(0, "test.Object", 0);
  const race::ScopedDomain sd(1);
  EXPECT_THROW(PASCHED_ASSERT_OWNED(o, "mutate"), check::CheckError);
  EXPECT_THROW(PASCHED_ASSERT_DOMAIN(0, "test.Buffer", 0, "record"),
               check::CheckError);
}
#endif  // PASCHED_VALIDATE_ENABLED
