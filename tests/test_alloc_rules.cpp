// Per-rule fire/silent coverage for pasched-alloc over the planted fixture
// corpus (tests/alloc/fixtures mirrors the src/ layout the scope filter
// expects), plus the waiver/claim contract: srclint-ok(PSL601) silences the
// finding but forfeits the PSL605 allocation-free claim — a waiver is not
// a certificate.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "alloc/runner.hpp"

using namespace pasched;

namespace {

const char* const kFixtureRoot = PASCHED_REPO_ROOT "/tests/alloc/fixtures";

alloc::AllocReport scan(const std::vector<std::string>& rels) {
  alloc::AllocOptions opts;
  opts.root = kFixtureRoot;
  return alloc::run_files(opts, rels);
}

std::size_t count_rule(const alloc::AllocReport& rep,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(rep.findings.begin(), rep.findings.end(),
                    [&](const analysis::Diagnostic& d) {
                      return d.rule == rule;
                    }));
}

}  // namespace

TEST(AllocRules, Psl601FiresOnEveryAllocationShape) {
  const alloc::AllocReport rep = scan({"src/psl601_fire.cxx"});
  // Naked new, std::malloc, and a per-call owning container: three hits.
  EXPECT_EQ(count_rule(rep, "PSL601"), 3u) << rep.str();
  EXPECT_EQ(rep.findings.size(), 3u);
  // An allocating hot function cannot be certified allocation-free.
  EXPECT_TRUE(rep.claims.empty());
}

TEST(AllocRules, Psl601SlabAndPlacementNewStaySilent) {
  const alloc::AllocReport rep = scan({"src/psl601_silent.cxx"});
  EXPECT_TRUE(rep.findings.empty()) << rep.str();
  // The clean hot function earns the allocation-free claim.
  ASSERT_EQ(rep.claims.size(), 1u);
  EXPECT_EQ(rep.claims[0].function, "fire_one");
}

TEST(AllocRules, Psl602FiresOnUndisciplinedGrowth) {
  const alloc::AllocReport rep = scan({"src/psl602_fire.cxx"});
  EXPECT_EQ(count_rule(rep, "PSL602"), 1u) << rep.str();
  EXPECT_EQ(rep.findings.size(), 1u);
  EXPECT_TRUE(rep.claims.empty());
}

TEST(AllocRules, Psl602ReserveDisciplineSilences) {
  const alloc::AllocReport rep = scan({"src/psl602_silent.cxx"});
  EXPECT_TRUE(rep.findings.empty()) << rep.str();
  ASSERT_EQ(rep.claims.size(), 1u);
  EXPECT_EQ(rep.claims[0].function, "push");
}

TEST(AllocRules, Psl603FiresOncePerHazardLine) {
  const alloc::AllocReport rep = scan({"src/psl603_fire.cxx"});
  // string member, unique_ptr member, raw-pointer member: one per line.
  EXPECT_EQ(count_rule(rep, "PSL603"), 3u) << rep.str();
  // Layout hazards are warnings — they flag, they do not gate.
  EXPECT_FALSE(analysis::any_errors(rep.findings));
}

TEST(AllocRules, Psl603FlatLayoutStaysSilent) {
  const alloc::AllocReport rep = scan({"src/psl603_silent.cxx"});
  EXPECT_TRUE(rep.findings.empty()) << rep.str();
}

TEST(AllocRules, Psl604FiresOnEveryContractClause) {
  const alloc::AllocReport rep = scan({"src/psl604_fire.cxx"});
  // Destructor, virtual, owning member, naked new in a member function.
  EXPECT_EQ(count_rule(rep, "PSL604"), 4u) << rep.str();
  EXPECT_TRUE(analysis::any_errors(rep.findings));
  EXPECT_EQ(rep.stats.arena_types, 1u);
}

TEST(AllocRules, Psl604HonoredContractStaysSilent) {
  const alloc::AllocReport rep = scan({"src/psl604_silent.cxx"});
  EXPECT_TRUE(rep.findings.empty()) << rep.str();
  EXPECT_EQ(rep.stats.arena_types, 1u);
}

TEST(AllocRules, Psl605WaiverSilencesButForfeitsTheClaim) {
  const alloc::AllocReport rep = scan({"src/psl605_claim.cxx"});
  // The waived allocation produces no finding...
  EXPECT_TRUE(rep.findings.empty()) << rep.str();
  EXPECT_EQ(rep.stats.suppressions_honored, 1u);
  // ...but only the genuinely clean function is certified.
  ASSERT_EQ(rep.claims.size(), 1u);
  EXPECT_EQ(rep.claims[0].function, "next_due");
}

TEST(AllocRules, OnlyFilterRestrictsFindingsButNotClaims) {
  alloc::AllocOptions opts;
  opts.root = kFixtureRoot;
  opts.cfg.only = {"PSL603"};
  const alloc::AllocReport rep = alloc::run_files(
      opts, {"src/psl601_fire.cxx", "src/psl601_silent.cxx",
             "src/psl603_fire.cxx"});
  EXPECT_EQ(rep.findings.size(), 3u) << rep.str();
  for (const analysis::Diagnostic& d : rep.findings)
    EXPECT_EQ(d.rule, "PSL603");
  // Claim eligibility ignores the filter: psl601_fire's function still
  // allocates, so only the silent twin is certified.
  ASSERT_EQ(rep.claims.size(), 1u);
  EXPECT_EQ(rep.claims[0].function, "fire_one");
}

TEST(AllocRules, FindingsAreSortedAndCarryRuleMetadata) {
  const alloc::AllocReport rep =
      scan({"src/psl604_fire.cxx", "src/psl601_fire.cxx"});
  ASSERT_GE(rep.findings.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      rep.findings.begin(), rep.findings.end(),
      [](const analysis::Diagnostic& a, const analysis::Diagnostic& b) {
        return a.subject != b.subject ? a.subject < b.subject
                                      : a.rule < b.rule;
      }));
  for (const char* id :
       {"PSL601", "PSL602", "PSL603", "PSL604", "PSL605", "PSL606"})
    EXPECT_NE(analysis::find_rule(id), nullptr) << id;
}
