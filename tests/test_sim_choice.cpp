#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "sim/choice.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

using namespace pasched;
using namespace pasched::sim;
using namespace pasched::sim::literals;

namespace {

/// Scripted decision source: returns the scripted picks in order (clamped to
/// the live arity), then defaults to 0. Records every query's tag.
struct ScriptedSource final : ChoiceSource {
  std::vector<std::size_t> picks;
  std::vector<std::string> tags;
  std::size_t next = 0;
  std::size_t choose(std::size_t n, const char* tag) override {
    tags.emplace_back(tag);
    const std::size_t p = next < picks.size() ? picks[next++] : 0;
    return p < n ? p : n - 1;
  }
};

std::vector<int> run_tied(TieBreak* tb) {
  Engine e;
  e.set_tie_break(tb);
  std::vector<int> order;
  const Time t = Time::zero() + 5_us;
  for (int i = 0; i < 6; ++i)
    e.schedule_at(t, [&order, i] { order.push_back(i); });
  e.run();
  return order;
}

}  // namespace

TEST(TieBreak, FifoStrategyMatchesDefault) {
  const std::vector<int> plain = run_tied(nullptr);
  FifoTieBreak fifo;
  EXPECT_EQ(run_tied(&fifo), plain);
  EXPECT_EQ(plain, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(TieBreak, LifoStrategyReverses) {
  LifoTieBreak lifo;
  EXPECT_EQ(run_tied(&lifo), (std::vector<int>{5, 4, 3, 2, 1, 0}));
}

TEST(TieBreak, RandomIsSeedDeterministic) {
  RandomTieBreak a(1234), b(1234), c(999);
  const std::vector<int> ra = run_tied(&a);
  const std::vector<int> rb = run_tied(&b);
  EXPECT_EQ(ra, rb);
  // Sanity: it is a permutation of all six events.
  std::vector<int> sorted = ra;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  (void)c;
}

TEST(TieBreak, SourceTieBreakFollowsScript) {
  // Candidates arrive seq-sorted, so picking index k fires the k-th oldest
  // remaining event: picks {2,0,1} over 4 tied events yield 2,0,3,1.
  ScriptedSource src;
  src.picks = {2, 0, 1};
  SourceTieBreak tb(&src);
  Engine e;
  e.set_tie_break(&tb);
  std::vector<int> order;
  const Time t = Time::zero() + 1_ms;
  for (int i = 0; i < 4; ++i)
    e.schedule_at(t, [&order, i] { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2, 0, 3, 1}));
  ASSERT_EQ(src.tags.size(), 3u);  // final lone event needs no decision
  for (const std::string& tag : src.tags) EXPECT_EQ(tag, "engine.tiebreak");
}

TEST(TieBreak, MixedTimestampsOnlyTieWithinOneInstant) {
  LifoTieBreak lifo;
  Engine e;
  e.set_tie_break(&lifo);
  std::vector<int> order;
  e.schedule_at(Time::zero() + 1_us, [&] { order.push_back(0); });
  e.schedule_at(Time::zero() + 2_us, [&] { order.push_back(1); });
  e.schedule_at(Time::zero() + 2_us, [&] { order.push_back(2); });
  e.schedule_at(Time::zero() + 3_us, [&] { order.push_back(3); });
  e.run();
  // Only the 2us pair is reorderable; time order is never violated.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1, 3}));
}

TEST(TieBreak, HandlerScheduledSameTimeJoinsTie) {
  // An event that schedules another at the *same* timestamp: the spawned
  // event still fires within this instant, after the already-tied ones.
  LifoTieBreak lifo;
  Engine e;
  e.set_tie_break(&lifo);
  std::vector<int> order;
  const Time t = Time::zero() + 1_ms;
  e.schedule_at(t, [&] {
    order.push_back(0);
    e.schedule_at(t, [&] { order.push_back(9); });
  });
  e.schedule_at(t, [&] { order.push_back(1); });
  e.run();
  // LIFO fires 1 first; 1 spawns nothing. Then 0 runs, spawning 9 — which
  // is now the only remaining event.
  EXPECT_EQ(order, (std::vector<int>{1, 0, 9}));
}

TEST(Engine, StepAndNextEventTime) {
  Engine e;
  int fired = 0;
  e.schedule_at(Time::zero() + 1_us, [&] { ++fired; });
  e.schedule_at(Time::zero() + 2_us, [&] { ++fired; });
  EXPECT_EQ(e.next_event_time(), Time::zero() + 1_us);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), Time::zero() + 1_us);
  EXPECT_EQ(e.next_event_time(), Time::zero() + 2_us);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
  EXPECT_EQ(e.next_event_time(), Time::max());
}

TEST(Engine, NextEventTimeSkipsCancelled) {
  Engine e;
  const EventId a = e.schedule_at(Time::zero() + 1_us, [] {});
  e.schedule_at(Time::zero() + 5_us, [] {});
  e.cancel(a);
  EXPECT_EQ(e.next_event_time(), Time::zero() + 5_us);
}

TEST(Engine, PendingHashTracksPendingSet) {
  Engine a, b;
  a.schedule_at(Time::zero() + 1_us, [] {});
  a.schedule_at(Time::zero() + 2_us, [] {});
  // Same pending *times* scheduled in a different order hash equal.
  b.schedule_at(Time::zero() + 2_us, [] {});
  b.schedule_at(Time::zero() + 1_us, [] {});
  EXPECT_EQ(a.pending_hash(), b.pending_hash());
  b.schedule_at(Time::zero() + 3_us, [] {});
  EXPECT_NE(a.pending_hash(), b.pending_hash());
}

TEST(Engine, LastFiredSeqAdvances) {
  Engine e;
  e.schedule_at(Time::zero() + 1_us, [] {});
  e.schedule_at(Time::zero() + 2_us, [] {});
  ASSERT_TRUE(e.step());
  const std::uint64_t s1 = e.last_fired_seq();
  ASSERT_TRUE(e.step());
  EXPECT_NE(e.last_fired_seq(), s1);
}

#if PASCHED_VALIDATE_ENABLED
namespace {

/// Malicious strategy: cancels one of the held candidates from inside
/// pick(). The engine must reject this — the candidate is already off the
/// heap, so the cancellation would otherwise be silently lost.
struct CancellingTieBreak final : TieBreak {
  Engine* engine = nullptr;
  std::size_t pick(const std::vector<TieCandidate>& ties) override {
    engine->cancel(ties.back().id);
    return 0;
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "cancelling";
  }
};

}  // namespace

TEST(TieBreak, CancelOfHeldCandidateIsRejected) {
  CancellingTieBreak tb;
  Engine e;
  tb.engine = &e;
  e.set_tie_break(&tb);
  const Time t = Time::zero() + 1_ms;
  e.schedule_at(t, [] {});
  e.schedule_at(t, [] {});
  EXPECT_THROW(e.run(), check::CheckError);
}
#endif  // PASCHED_VALIDATE_ENABLED

TEST(TieBreak, CancelOfUnheldEventDuringPickIsFine) {
  // Cancelling an event that is NOT part of the tie set from inside a
  // handler fired by a strategy stays a harmless no-op.
  LifoTieBreak lifo;
  Engine e;
  e.set_tie_break(&lifo);
  int fired = 0;
  const Time t = Time::zero() + 1_ms;
  const EventId victim = e.schedule_at(Time::zero() + 2_ms, [&] { ++fired; });
  e.schedule_at(t, [&] { e.cancel(victim); });
  e.schedule_at(t, [] {});
  e.run();
  EXPECT_EQ(fired, 0);
}
