// Workload generators: program structure of aggregate_trace, the ALE3D
// proxy, and the generic BSP app.
#include <gtest/gtest.h>

#include <vector>

#include "apps/aggregate_trace.hpp"
#include "apps/ale3d_proxy.hpp"
#include "apps/bsp.hpp"
#include "apps/channels.hpp"
#include "mpi/microop.hpp"

using namespace pasched;
using mpi::MicroOp;

namespace {

/// Drains a workload completely, returning the flattened op stream.
std::vector<MicroOp> drain(mpi::Workload& w, int rank, int size,
                           std::uint64_t seed = 1) {
  sim::Rng rng(seed);
  mpi::TaskInfo info{rank, size, &rng};
  std::vector<MicroOp> all, chunk;
  while (true) {
    chunk.clear();
    if (!w.refill(info, chunk)) break;
    EXPECT_FALSE(chunk.empty());
    for (auto& op : chunk) all.push_back(op);
    EXPECT_LT(all.size(), 5'000'000u) << "workload failed to terminate";
    if (all.size() >= 5'000'000u) break;
  }
  return all;
}

int count_kind(const std::vector<MicroOp>& ops, MicroOp::Kind k) {
  int n = 0;
  for (const auto& op : ops)
    if (op.kind == k) ++n;
  return n;
}

int count_marks(const std::vector<MicroOp>& ops, std::uint32_t channel,
                bool begin) {
  int n = 0;
  for (const auto& op : ops) {
    if (op.kind == (begin ? MicroOp::Kind::MarkBegin : MicroOp::Kind::MarkEnd) &&
        op.channel == channel)
      ++n;
  }
  return n;
}

}  // namespace

TEST(AggregateTrace, EmitsOneSpanPerCall) {
  apps::AggregateTraceConfig cfg;
  cfg.loops = 2;
  cfg.calls_per_loop = 100;
  auto w = apps::aggregate_trace(cfg)(0, 8);
  const auto ops = drain(*w, 0, 8);
  EXPECT_EQ(count_marks(ops, apps::kChanAllreduce, true), 200);
  EXPECT_EQ(count_marks(ops, apps::kChanAllreduce, false), 200);
  // Trace-block markers every 64 calls: ceil(200/64) = 4 blocks.
  EXPECT_EQ(count_marks(ops, apps::kChanStep, true), 4);
  EXPECT_EQ(count_marks(ops, apps::kChanStep, false), 4);
  // Each call includes sends/recvs of the collective plus inter-call compute.
  EXPECT_GT(count_kind(ops, MicroOp::Kind::Send), 200);
  EXPECT_GT(count_kind(ops, MicroOp::Kind::Compute), 199);
}

TEST(AggregateTrace, MarksAreBalancedAndOrdered) {
  apps::AggregateTraceConfig cfg;
  cfg.loops = 1;
  cfg.calls_per_loop = 130;
  cfg.trace_block = 64;
  auto w = apps::aggregate_trace(cfg)(3, 16);
  const auto ops = drain(*w, 3, 16);
  int depth0 = 0, depth1 = 0;
  for (const auto& op : ops) {
    if (op.kind == MicroOp::Kind::MarkBegin) {
      (op.channel == apps::kChanAllreduce ? depth0 : depth1)++;
    } else if (op.kind == MicroOp::Kind::MarkEnd) {
      (op.channel == apps::kChanAllreduce ? depth0 : depth1)--;
    }
    EXPECT_GE(depth0, 0);
    EXPECT_LE(depth0, 1);
    EXPECT_GE(depth1, 0);
    EXPECT_LE(depth1, 1);
  }
  EXPECT_EQ(depth0, 0);
  EXPECT_EQ(depth1, 0);
}

TEST(AggregateTrace, WarmupPrependsUntimedCompute) {
  apps::AggregateTraceConfig cfg;
  cfg.loops = 1;
  cfg.calls_per_loop = 1;
  cfg.warmup = sim::Duration::sec(3);
  auto w = apps::aggregate_trace(cfg)(0, 4);
  const auto ops = drain(*w, 0, 4);
  ASSERT_FALSE(ops.empty());
  EXPECT_EQ(ops[0].kind, MicroOp::Kind::Compute);
  EXPECT_EQ(ops[0].dur.count(), sim::Duration::sec(3).count());
  // The warmup compute precedes the start barrier, which precedes any mark.
  std::size_t first_send = 0, first_mark = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!first_send && ops[i].kind == MicroOp::Kind::Send) first_send = i;
    if (!first_mark && ops[i].kind == MicroOp::Kind::MarkBegin) first_mark = i;
  }
  EXPECT_LT(first_send, first_mark);
}

TEST(AggregateTrace, TagBasesNeverRepeat) {
  apps::AggregateTraceConfig cfg;
  cfg.loops = 1;
  cfg.calls_per_loop = 50;
  auto w = apps::aggregate_trace(cfg)(1, 8);
  const auto ops = drain(*w, 1, 8);
  std::set<std::uint64_t> seen;
  for (const auto& op : ops) {
    if (op.kind == MicroOp::Kind::Send || op.kind == MicroOp::Kind::Recv) {
      // (peer, tag) pairs may repeat across direction but a given Send tag
      // appears once per (peer, tag).
      if (op.kind == MicroOp::Kind::Send) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(op.peer) << 40) | op.tag;
        EXPECT_TRUE(seen.insert(key).second)
            << "duplicate send key would alias in the mailbox";
      }
    }
  }
}

TEST(Ale3dProxy, PhaseStructureMatchesThePaper) {
  apps::Ale3dConfig cfg;
  cfg.timesteps = 10;
  cfg.checkpoint_every = 5;
  cfg.detach_for_io = true;
  auto w = apps::ale3d_proxy(cfg)(0, 4);
  const auto ops = drain(*w, 0, 4);
  // I/O phases: initial read + 1 checkpoint (step 5) + final dump = 3.
  EXPECT_EQ(count_kind(ops, MicroOp::Kind::Io), 3);
  EXPECT_EQ(count_marks(ops, apps::kChanIo, true), 3);
  // Detach/attach wrap every I/O phase.
  EXPECT_EQ(count_kind(ops, MicroOp::Kind::Detach), 3);
  EXPECT_EQ(count_kind(ops, MicroOp::Kind::Attach), 3);
  // One step span per timestep; reductions_per_step allreduce spans each.
  EXPECT_EQ(count_marks(ops, apps::kChanStep, true), 10);
  EXPECT_EQ(count_marks(ops, apps::kChanAllreduce, true),
            10 * cfg.reductions_per_step);
}

TEST(Ale3dProxy, NoDetachWhenEscapeDisabled) {
  apps::Ale3dConfig cfg;
  cfg.timesteps = 4;
  cfg.detach_for_io = false;
  auto w = apps::ale3d_proxy(cfg)(2, 8);
  const auto ops = drain(*w, 2, 8);
  EXPECT_EQ(count_kind(ops, MicroOp::Kind::Detach), 0);
  EXPECT_EQ(count_kind(ops, MicroOp::Kind::Attach), 0);
  EXPECT_EQ(count_kind(ops, MicroOp::Kind::Io), 2);  // read + dump
}

TEST(Ale3dProxy, ComputeHasBoundedImbalance) {
  apps::Ale3dConfig cfg;
  cfg.timesteps = 50;
  cfg.compute_mean = sim::Duration::ms(20);
  cfg.compute_cv = 0.05;
  auto w = apps::ale3d_proxy(cfg)(0, 4);
  const auto ops = drain(*w, 0, 4, /*seed=*/33);
  double total = 0;
  int n = 0;
  for (const auto& op : ops) {
    if (op.kind == MicroOp::Kind::Compute) {
      total += op.dur.to_ms();
      ++n;
      EXPECT_GT(op.dur.to_ms(), 5.0);   // floor at mean/4
      EXPECT_LT(op.dur.to_ms(), 40.0);  // plausible upper bound
    }
  }
  ASSERT_EQ(n, 50);
  EXPECT_NEAR(total / n, 20.0, 1.0);
}

TEST(Bsp, AlternatesComputeAndCollectives) {
  apps::BspConfig cfg;
  cfg.steps = 20;
  cfg.allreduces_per_step = 3;
  auto w = apps::bsp(cfg)(1, 4);
  const auto ops = drain(*w, 1, 4);
  EXPECT_EQ(count_marks(ops, apps::kChanStep, true), 20);
  EXPECT_EQ(count_marks(ops, apps::kChanCompute, true), 20);
  EXPECT_EQ(count_marks(ops, apps::kChanAllreduce, true), 60);
  EXPECT_EQ(count_kind(ops, MicroOp::Kind::Io), 0);
}

TEST(Workloads, PerRankStreamsDiffer) {
  // Different ranks get different collective schedules but the same counts.
  apps::BspConfig cfg;
  cfg.steps = 5;
  auto w0 = apps::bsp(cfg)(0, 8);
  auto w7 = apps::bsp(cfg)(7, 8);
  const auto a = drain(*w0, 0, 8);
  const auto b = drain(*w7, 7, 8);
  EXPECT_EQ(count_marks(a, apps::kChanStep, true),
            count_marks(b, apps::kChanStep, true));
  // Peers differ between ranks.
  bool differ = a.size() != b.size();
  for (std::size_t i = 0; !differ && i < a.size(); ++i)
    if (a[i].kind != b[i].kind || a[i].peer != b[i].peer) differ = true;
  EXPECT_TRUE(differ);
}
