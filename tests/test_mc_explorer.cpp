#include <gtest/gtest.h>

#include <string>

#include "mc/configs.hpp"
#include "mc/explorer.hpp"
#include "mc/schedule.hpp"

using namespace pasched;
using namespace pasched::mc;

namespace {

ExploreOptions default_opts() {
  ExploreOptions o;
  o.max_runs = 20000;
  o.max_depth = 256;
  return o;
}

}  // namespace

TEST(Explorer, LostWakeupIsFoundByCompletionOracle) {
  Explorer ex(find_model("lost-wakeup"), default_opts());
  const ExploreResult res = ex.explore();
  ASSERT_TRUE(res.violation.has_value());
  EXPECT_EQ(res.violation->oracle, Oracle::Completion);
  EXPECT_NE(res.violation->message.find("not completed"), std::string::npos);
  // The planted race needs exactly one non-default tie-break decision.
  EXPECT_GE(res.violation->schedule.deviations(), 1u);
  // The default (FIFO) run is clean, so finding the bug took exploration.
  EXPECT_GT(res.stats.runs, 1u);
}

TEST(Explorer, LostWakeupCounterexampleReplays) {
  Explorer ex(find_model("lost-wakeup"), default_opts());
  const ExploreResult res = ex.explore();
  ASSERT_TRUE(res.violation.has_value());
  // Replaying the recorded schedule reproduces the violation exactly.
  const RunRecord replay = ex.run_schedule(res.violation->schedule);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->oracle, Oracle::Completion);
  // And a default run stays clean.
  const RunRecord clean = ex.run_schedule(Schedule{});
  EXPECT_FALSE(clean.violation.has_value());
}

TEST(Explorer, StarvationIsFoundByLivenessOracle) {
  Explorer ex(find_model("starvation"), default_opts());
  const ExploreResult res = ex.explore();
  ASSERT_TRUE(res.violation.has_value());
  EXPECT_EQ(res.violation->oracle, Oracle::Liveness);
  EXPECT_NE(res.violation->message.find("not dispatched"), std::string::npos);
  // The starving interleaving hinges on a non-default arrival phase.
  bool phase_deviation = false;
  for (const Choice& c : res.violation->schedule.choices())
    if (c.tag == "daemon.arrival_phase" && c.pick != 0) phase_deviation = true;
  EXPECT_TRUE(phase_deviation);
}

TEST(Explorer, CleanConfigCertifiesWithinBudget) {
  Explorer ex(find_model("clean"), default_opts());
  const ExploreResult res = ex.explore();
  EXPECT_FALSE(res.violation.has_value())
      << to_string(res.violation->oracle) << ": " << res.violation->message;
  EXPECT_TRUE(res.certified());
  EXPECT_FALSE(res.stats.clipped);
  EXPECT_GT(res.stats.runs, 1u);  // there genuinely were interleavings
}

TEST(Explorer, DporReductionSkipsAndRatioAboveOne) {
  Explorer ex(find_model("clean"), default_opts());
  const ExploreResult res = ex.explore();
  ASSERT_TRUE(res.certified());
  EXPECT_GT(res.stats.dpor_skips, 0u);
  EXPECT_GT(res.stats.reduction_ratio(), 1.0);

  // Turning the reduction off must not change the verdict, only the cost.
  ExploreOptions raw = default_opts();
  raw.reduce = false;
  Explorer ex_raw(find_model("clean"), raw);
  const ExploreResult res_raw = ex_raw.explore();
  ASSERT_TRUE(res_raw.certified());
  EXPECT_EQ(res_raw.stats.dpor_skips, 0u);
  EXPECT_GE(res_raw.stats.runs, res.stats.runs);
}

TEST(Explorer, DivergenceOracleCatchesOutcomeSpread) {
  // Disable the liveness oracle so the starvation scenario survives long
  // enough for the cross-run divergence check: the daemon's CPU time is
  // phase-dependent (full burst vs starved ~0), far beyond 50us tolerance.
  ExploreOptions o = default_opts();
  o.liveness_window = sim::Duration::zero();
  o.divergence_tolerance = 50e-6;
  Explorer ex(find_model("starvation"), o);
  const ExploreResult res = ex.explore();
  ASSERT_TRUE(res.violation.has_value());
  EXPECT_EQ(res.violation->oracle, Oracle::Divergence);
  EXPECT_NE(res.violation->message.find("diverge"), std::string::npos);
}

TEST(Explorer, BudgetClippingIsReportedNotCertified) {
  ExploreOptions o = default_opts();
  o.max_runs = 2;  // way below what "clean" needs
  Explorer ex(find_model("clean"), o);
  const ExploreResult res = ex.explore();
  EXPECT_FALSE(res.violation.has_value());
  EXPECT_TRUE(res.stats.clipped);
  EXPECT_FALSE(res.certified());
}

TEST(Explorer, VisitedPruningFiresOnClean) {
  Explorer ex(find_model("clean"), default_opts());
  const ExploreResult with = ex.explore();
  ASSERT_TRUE(with.certified());

  ExploreOptions o = default_opts();
  o.prune = false;
  Explorer ex_off(find_model("clean"), o);
  const ExploreResult without = ex_off.explore();
  ASSERT_TRUE(without.certified());
  EXPECT_GE(without.stats.runs, with.stats.runs);
}

TEST(Explorer, ModelZooIsWellFormed) {
  EXPECT_EQ(model_zoo().size(), 3u);
  for (const NamedModel& m : model_zoo()) {
    EXPECT_TRUE(find_model(m.name));
    EXPECT_FALSE(m.description.empty());
  }
  EXPECT_FALSE(find_model("no-such-config"));
}
