// InlineCallback: the no-allocation callable used for every event.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "sim/callback.hpp"

using pasched::sim::InlineCallback;

TEST(InlineCallback, EmptyByDefault) {
  InlineCallback<48> cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_THROW(cb(), std::logic_error);
}

TEST(InlineCallback, InvokesLambda) {
  int hits = 0;
  InlineCallback<48> cb = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, MoveTransfersOwnership) {
  int hits = 0;
  InlineCallback<48> a = [&hits] { ++hits; };
  InlineCallback<48> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, MoveAssignReplacesAndDestroysOld) {
  auto counter = std::make_shared<int>(0);
  EXPECT_EQ(counter.use_count(), 1);
  {
    InlineCallback<48> a = [counter] { ++*counter; };
    EXPECT_EQ(counter.use_count(), 2);
    InlineCallback<48> b = [counter] { *counter += 10; };
    EXPECT_EQ(counter.use_count(), 3);
    a = std::move(b);
    EXPECT_EQ(counter.use_count(), 2) << "old capture must be destroyed";
    a();
    EXPECT_EQ(*counter, 10);
  }
  EXPECT_EQ(counter.use_count(), 1) << "all captures destroyed with wrappers";
}

TEST(InlineCallback, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(7);
  {
    InlineCallback<48> cb = [token] { (void)*token; };
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallback, ResetClears) {
  auto token = std::make_shared<int>(7);
  InlineCallback<48> cb = [token] {};
  cb.reset();
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallback, SelfMoveAssignIsSafe) {
  int hits = 0;
  InlineCallback<48> a = [&hits] { ++hits; };
  auto& ref = a;
  a = std::move(ref);
  ASSERT_TRUE(static_cast<bool>(a));
  a();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, CapturesUpToCapacity) {
  struct Big {
    std::int64_t a[5];  // 40 bytes — fits in 48
  };
  Big big{{1, 2, 3, 4, 5}};
  std::int64_t sum = 0;
  // sum pointer (8) + Big (40) = 48 bytes: exactly at capacity.
  std::int64_t* sp = &sum;
  InlineCallback<48> cb = [sp, big] {
    for (auto v : big.a) *sp += v;
  };
  cb();
  EXPECT_EQ(sum, 15);
}
