// Property/fuzz tests of the kernel model: random thread populations with
// random programs (compute/spin/block), random wakes, kicks and priority
// changes, across the full tunables matrix. Invariants:
//   * a thread never occupies two CPUs at once;
//   * a CPU never has two occupants;
//   * all issued work is eventually executed and charged (work conservation,
//     within context-switch/spin slack);
//   * every thread reaches Done (no lost wakeups, no stuck preemptions);
//   * class accounting never exceeds wall-clock capacity.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "kern/kernel.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

using namespace pasched;
using namespace pasched::sim::literals;
using kern::RunDecision;
using sim::Duration;
using sim::Engine;
using sim::Time;

namespace {

/// Random program: a bounded number of decisions drawn from {Compute, Spin,
/// Block}, then Exit. Tracks how much compute it issued.
struct FuzzClient final : kern::ThreadClient {
  FuzzClient(std::uint64_t seed, int decisions) : rng(seed), left(decisions) {}

  RunDecision next(Time) override {
    if (left-- <= 0) return RunDecision::exit();
    const double p = rng.next_double();
    if (p < 0.6) {
      const Duration d = rng.uniform_dur(Duration::us(20), Duration::ms(3));
      issued += d;
      return RunDecision::compute(d);
    }
    if (p < 0.8) return RunDecision::spin();   // needs a kick
    return RunDecision::block();               // needs a wake
  }

  sim::Rng rng;
  int left;
  Duration issued = Duration::zero();
};

/// Observer asserting occupancy invariants on every transition.
struct InvariantObserver final : kern::SchedObserver {
  std::map<const kern::Thread*, kern::CpuId> running;
  std::map<kern::CpuId, const kern::Thread*> occupant;
  bool violated = false;
  std::string why;

  void fail(const std::string& msg) {
    violated = true;
    if (why.empty()) why = msg;
  }
  void on_dispatch(Time, kern::NodeId, kern::CpuId cpu,
                   const kern::Thread& t) override {
    if (running.count(&t) != 0) fail("thread dispatched on two CPUs: " + t.name());
    const auto it = occupant.find(cpu);
    if (it != occupant.end() && it->second != nullptr)
      fail("CPU double-occupied");
    running[&t] = cpu;
    occupant[cpu] = &t;
  }
  void on_preempt(Time, kern::NodeId, kern::CpuId,
                  const kern::Thread&) override {}
  void on_state(Time, kern::NodeId, const kern::Thread& t,
                kern::ThreadState s) override {
    if (s == kern::ThreadState::Running) return;
    const auto it = running.find(&t);
    if (it != running.end()) {
      occupant.erase(it->second);
      running.erase(it);
    }
  }
  void on_idle(Time, kern::NodeId, kern::CpuId cpu) override {
    occupant.erase(cpu);
  }
};

struct TunablesCase {
  const char* name;
  kern::Tunables tun;
};

std::vector<TunablesCase> tunables_matrix() {
  std::vector<TunablesCase> out;
  {
    kern::Tunables t;
    out.push_back({"vanilla", t});
  }
  {
    kern::Tunables t;
    t.rt_scheduling = true;
    out.push_back({"rt", t});
  }
  {
    kern::Tunables t;
    t.rt_scheduling = true;
    t.rt_reverse_preemption = true;
    t.rt_multi_ipi = true;
    out.push_back({"rt_full", t});
  }
  {
    kern::Tunables t;
    t.big_tick = 25;
    t.synchronized_ticks = true;
    t.cluster_aligned_ticks = true;
    out.push_back({"bigtick_sync", t});
  }
  {
    kern::Tunables t;
    t.big_tick = 25;
    t.synchronized_ticks = true;
    t.cluster_aligned_ticks = true;
    t.rt_scheduling = true;
    t.rt_reverse_preemption = true;
    t.rt_multi_ipi = true;
    t.daemon_global_queue = true;
    out.push_back({"prototype", t});
  }
  return out;
}

}  // namespace

class KernFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, KernFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST_P(KernFuzz, RandomWorkloadKeepsInvariants) {
  const std::uint64_t seed = GetParam();
  for (const auto& [name, tun] : tunables_matrix()) {
    Engine e;
    const int ncpus = 4;
    kern::Kernel k(e, 0, ncpus, tun, Duration::zero(), seed);
    InvariantObserver obs;
    k.set_observer(&obs);
    sim::Rng rng(seed * 7919);

    const int nthreads = 12;
    std::vector<std::unique_ptr<FuzzClient>> clients;
    std::vector<kern::Thread*> threads;
    for (int i = 0; i < nthreads; ++i) {
      clients.push_back(std::make_unique<FuzzClient>(
          seed * 1000 + static_cast<std::uint64_t>(i), 25));
      kern::ThreadSpec ts;
      ts.name = "fuzz" + std::to_string(i);
      ts.cls = (i % 3 == 0) ? kern::ThreadClass::Daemon
                            : kern::ThreadClass::AppTask;
      ts.base_priority = static_cast<kern::Priority>(30 + (i * 7) % 70);
      ts.fixed_priority = (i % 2 == 0);
      ts.home_cpu = (i % 4 == 3) ? kern::kNoCpu : i % ncpus;
      ts.stealable = (i % 5 != 0);
      threads.push_back(&k.create_thread(ts, *clients.back()));
    }
    k.start();

    // Driver: every 200 us, randomly wake blocked threads, kick (harmless if
    // not spinning), and jiggle priorities.
    std::function<void()> driver = [&] {
      for (kern::Thread* t : threads) {
        if (t->state() == kern::ThreadState::Blocked && rng.bernoulli(0.5))
          k.wake(*t, kern::kExternalActor);
        if (rng.bernoulli(0.3)) k.kick(*t);
        if (rng.bernoulli(0.1) && t->state() != kern::ThreadState::Done) {
          k.set_priority(*t,
                         static_cast<kern::Priority>(
                             20 + rng.uniform_int(0, 80)),
                         rng.bernoulli(0.5), kern::kExternalActor);
        }
      }
      bool all_done = true;
      for (kern::Thread* t : threads)
        if (t->state() != kern::ThreadState::Done) all_done = false;
      if (!all_done) e.schedule_after(200_us, [&] { driver(); });
    };
    e.schedule_after(200_us, [&] { driver(); });

    // Kick off everyone.
    for (kern::Thread* t : threads) k.wake(*t, kern::kExternalActor);
    e.run_until(Time::zero() + Duration::sec(30));

    EXPECT_FALSE(obs.violated) << "[" << name << "] " << obs.why;
    Duration total_charged = Duration::zero();
    for (int i = 0; i < nthreads; ++i) {
      EXPECT_EQ(threads[static_cast<std::size_t>(i)]->state(),
                kern::ThreadState::Done)
          << "[" << name << "] thread " << i << " never finished (lost wake?)";
      // Work conservation: everything issued was executed; charge includes
      // spin time and context switches, so charged >= issued.
      EXPECT_GE(threads[static_cast<std::size_t>(i)]->total_cpu().count(),
                clients[static_cast<std::size_t>(i)]->issued.count())
          << "[" << name << "] thread " << i;
      total_charged += threads[static_cast<std::size_t>(i)]->total_cpu();
    }
    // Capacity: charged CPU cannot exceed elapsed * ncpus.
    const Duration capacity =
        (e.now() - Time::zero()) * static_cast<std::int64_t>(ncpus);
    EXPECT_LE(total_charged.count(), capacity.count()) << "[" << name << "]";
  }
}

class KernFuzzContended : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, KernFuzzContended, ::testing::Values(2u, 9u, 77u));

TEST_P(KernFuzzContended, OversubscribedSingleCpuStillDrainsEverything) {
  // 10 threads on 1 CPU with priority churn: everything must still finish
  // and the CPU can never be double-booked.
  const std::uint64_t seed = GetParam();
  Engine e;
  kern::Tunables tun;
  tun.rt_scheduling = true;
  kern::Kernel k(e, 0, 1, tun, Duration::zero(), seed);
  InvariantObserver obs;
  k.set_observer(&obs);
  sim::Rng rng(seed);

  std::vector<std::unique_ptr<FuzzClient>> clients;
  std::vector<kern::Thread*> threads;
  for (int i = 0; i < 10; ++i) {
    clients.push_back(std::make_unique<FuzzClient>(seed + static_cast<std::uint64_t>(i), 15));
    kern::ThreadSpec ts;
    // Built in two steps: gcc 12's -Wrestrict misfires on `"c" + to_string`.
    ts.name = "c";
    ts.name += std::to_string(i);
    ts.base_priority = static_cast<kern::Priority>(40 + i);
    ts.fixed_priority = true;
    ts.home_cpu = 0;
    threads.push_back(&k.create_thread(ts, *clients.back()));
  }
  k.start();
  std::function<void()> driver = [&] {
    bool all_done = true;
    for (kern::Thread* t : threads) {
      if (t->state() == kern::ThreadState::Blocked) k.wake(*t);
      k.kick(*t);
      if (t->state() != kern::ThreadState::Done) all_done = false;
    }
    if (!all_done) e.schedule_after(500_us, [&] { driver(); });
  };
  e.schedule_after(500_us, [&] { driver(); });
  for (kern::Thread* t : threads) k.wake(*t);
  e.run_until(Time::zero() + Duration::sec(60));
  EXPECT_FALSE(obs.violated) << obs.why;
  for (kern::Thread* t : threads)
    EXPECT_EQ(t->state(), kern::ThreadState::Done) << t->name();
}
