// Whole-tree gates for pasched-contend: the repository itself must scan
// clean (its seams are either correctly ordered or CacheAligned-padded),
// the planted corpus must trip every static rule, and the cross-TU
// lock-order graph over the corpus must match its golden form exactly —
// the same pair of directions the CI contend job asserts via the binary.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "contend/runner.hpp"

using namespace pasched;

namespace {

contend::ContendReport scan_tree(const std::string& root) {
  contend::ContendOptions opts;
  opts.root = root;
  return contend::run_tree(opts);
}

}  // namespace

TEST(ContendTree, RepositoryScansClean) {
  const contend::ContendReport rep = scan_tree(PASCHED_REPO_ROOT);
  EXPECT_TRUE(rep.findings.empty()) << rep.str();
  // Sanity that the scan covered the tree: a discovery regression that
  // found nothing would also "pass" the emptiness check.
  EXPECT_GT(rep.stats.files_in_scope, 100u);
  EXPECT_GT(rep.stats.functions, 500u);
  // The partitioned core's seams must be visible to extraction: the engine
  // declares SeamMutex members and takes locks in drain/post paths.
  EXPECT_GE(rep.stats.mutex_members, 5u);
  EXPECT_GE(rep.stats.acquisitions, 20u);
  // No live PSL505 claims in the tree today; the corpus covers the path.
  EXPECT_TRUE(rep.claims.empty());
}

TEST(ContendTree, FixtureCorpusNeverLeaksIntoCleanScans) {
  const contend::ContendReport rep = scan_tree(PASCHED_REPO_ROOT);
  for (const std::string& edge : rep.graph)
    EXPECT_EQ(edge.find("contend/fixtures"), std::string::npos) << edge;
  for (const analysis::Diagnostic& d : rep.findings)
    EXPECT_EQ(d.subject.find("contend/fixtures"), std::string::npos)
        << d.subject;
}

TEST(ContendTree, PlantedCorpusTripsEveryStaticRule) {
  const contend::ContendReport rep =
      scan_tree(std::string(PASCHED_REPO_ROOT) + "/tests/contend/fixtures");
  EXPECT_TRUE(analysis::any_errors(rep.findings));
  std::set<std::string> rules;
  for (const analysis::Diagnostic& d : rep.findings) rules.insert(d.rule);
  // PSL506 is runtime-only (the ledger refutation); the static sweep must
  // trip everything else.
  for (const char* r : {"PSL501", "PSL502", "PSL503", "PSL504", "PSL505"})
    EXPECT_EQ(rules.count(r), 1u) << "corpus never trips " << r;
  EXPECT_EQ(rules.count("PSL506"), 0u);
  EXPECT_EQ(rep.stats.cycles, 2u);  // one in-file ABBA, one cross-TU
  ASSERT_EQ(rep.claims.size(), 1u);
  EXPECT_EQ(rep.claims[0].site, "Queue.qmu_");
}

TEST(ContendTree, GoldenLockOrderGraph) {
  const contend::ContendReport rep =
      scan_tree(std::string(PASCHED_REPO_ROOT) + "/tests/contend/fixtures");
  const std::vector<std::string> expected = {
      "CrossPair.x_ -> CrossPair.y_ @ src/psl501_cross_b.cxx:12",
      "CrossPair.y_ -> CrossPair.x_ @ src/psl501_cross_a.cxx:13",
      "Pair.a_ -> Pair.b_ @ src/psl501_abba_fire.cxx:12",
      "Pair.b_ -> Pair.a_ @ src/psl501_abba_fire.cxx:17",
      "PairOk.c_ -> PairOk.d_ @ src/psl501_silent.cxx:12",
  };
  EXPECT_EQ(rep.graph, expected);
}

TEST(ContendTree, ReportCarriesTheSharedJsonHeader) {
  const contend::ContendReport rep =
      scan_tree(std::string(PASCHED_REPO_ROOT) + "/tests/contend/fixtures");
  const std::string js = rep.json();
  EXPECT_EQ(js.find("{\n  \"schema\": 1,\n  \"tool\": \"pasched-contend\","),
            0u);
  EXPECT_NE(js.find("\"claims\""), std::string::npos);
  EXPECT_NE(js.find("\"graph\""), std::string::npos);
}
