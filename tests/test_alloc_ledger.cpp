// Unit tests for the runtime allocation ledger: attribution scopes charge
// the right (site, phase) bucket, reset zeroes, reserve_cold's growth
// lands cold, and check_claims refutes exactly the hot-allocating Core
// sites (PSL606) — never Dispatch pressure, never unobserved claims.
//
// Counting is process-global while installed, so every test brackets its
// allocations with reset()/install()/remove() and asserts only on its own
// named rows (gtest's incidental allocations land in "(unscoped)").
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alloc/ledger.hpp"
#include "util/allocgate.hpp"

using namespace pasched;

namespace {

const alloc::SiteAllocRow* find_row(const alloc::AllocLedgerReport& rep,
                                    const std::string& name) {
  for (const alloc::SiteAllocRow& r : rep.sites)
    if (r.name == name) return &r;
  return nullptr;
}

// Defeats heap elision and keeps each probe's size recognizable.
void churn(std::size_t n) {
  std::vector<long> v;
  v.reserve(n);
  static volatile const void* sink;
  sink = v.data();
  static_cast<void>(sink);
}

}  // namespace

TEST(AllocLedger, AvailabilityMatchesTheBuild) {
#if PASCHED_VALIDATE_ENABLED
  EXPECT_TRUE(alloc::Ledger::available());
#else
  EXPECT_FALSE(alloc::Ledger::available());
  alloc::Ledger ledger;
  ledger.install();
  churn(64);
  ledger.remove();
  const alloc::AllocLedgerReport rep = ledger.report();
  EXPECT_FALSE(rep.enabled);
  EXPECT_TRUE(rep.sites.empty());
  EXPECT_TRUE(ledger.check_claims({{"anything", "f", 1}}).empty());
#endif
}

#if PASCHED_VALIDATE_ENABLED

TEST(AllocLedger, HotScopeChargesTheHotBucket) {
  alloc::Ledger ledger;
  ledger.reset();
  ledger.install();
  {
    PASCHED_ALLOC_HOT_SCOPE("LedgerTest.hot");
    churn(512);
  }
  ledger.remove();
  const alloc::AllocLedgerReport rep = ledger.report();
  EXPECT_TRUE(rep.enabled);
  const alloc::SiteAllocRow* row = find_row(rep, "LedgerTest.hot");
  ASSERT_NE(row, nullptr) << rep.str();
  EXPECT_EQ(row->kind, util::AllocSiteKind::Core);
  EXPECT_GE(row->hot_allocs, 1u);
  EXPECT_GE(row->hot_bytes, 512u * sizeof(long));
  EXPECT_EQ(row->cold_allocs, 0u);
  // Core hot traffic is exactly what the BENCH gate sums.
  EXPECT_GE(rep.hot_window_allocs, row->hot_allocs);
}

TEST(AllocLedger, ColdRegionAndReserveColdChargeTheColdBucket) {
  alloc::Ledger ledger;
  ledger.reset();
  ledger.install();
  {
    PASCHED_ALLOC_HOT_SCOPE("LedgerTest.coldgrowth");
    {
      PASCHED_ALLOC_COLD_REGION();
      churn(256);
    }
    std::vector<int> scratch;
    util::reserve_cold(scratch, 1024);  // sanctioned amortized growth
  }
  ledger.remove();
  const alloc::AllocLedgerReport rep = ledger.report();
  const alloc::SiteAllocRow* row = find_row(rep, "LedgerTest.coldgrowth");
  ASSERT_NE(row, nullptr) << rep.str();
  EXPECT_EQ(row->hot_allocs, 0u);
  EXPECT_GE(row->cold_allocs, 2u);
  EXPECT_GE(row->cold_bytes, 256u * sizeof(long) + 1024u * sizeof(int));
}

TEST(AllocLedger, DispatchPressureIsMeasuredButNeverGated) {
  alloc::Ledger ledger;
  ledger.reset();
  ledger.install();
  {
    PASCHED_ALLOC_DISPATCH_SCOPE("LedgerTest.dispatch");
    churn(128);
  }
  ledger.remove();
  const alloc::AllocLedgerReport rep = ledger.report();
  const alloc::SiteAllocRow* row = find_row(rep, "LedgerTest.dispatch");
  ASSERT_NE(row, nullptr) << rep.str();
  EXPECT_EQ(row->kind, util::AllocSiteKind::Dispatch);
  EXPECT_GE(row->hot_allocs, 1u);
  // Dispatch rows are workload pressure: excluded from the hot-window
  // gate, and a claim carrying the same name is not refuted.
  EXPECT_EQ(rep.hot_window_allocs, 0u);
  EXPECT_GE(rep.dispatch_hot_allocs, 1u);
  EXPECT_TRUE(
      ledger.check_claims({{"LedgerTest.dispatch", "f.cpp", 1}}).empty());
}

TEST(AllocLedger, CheckClaimsRefutesOnlyHotAllocatingCoreSites) {
  alloc::Ledger ledger;
  ledger.reset();
  ledger.install();
  {
    PASCHED_ALLOC_HOT_SCOPE("LedgerTest.refuted");
    churn(64);
  }
  {
    PASCHED_ALLOC_COLD_SCOPE("LedgerTest.coldonly");
    churn(64);
  }
  ledger.remove();
  const std::vector<analysis::Diagnostic> ds = ledger.check_claims(
      {{"LedgerTest.refuted", "src/x.cpp", 10},
       {"LedgerTest.coldonly", "src/y.cpp", 20},
       {"LedgerTest.never_ran", "src/z.cpp", 30}});
  // Exactly the hot allocator: cold traffic is sanctioned, an unobserved
  // site proves nothing either way.
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].rule, "PSL606");
  EXPECT_EQ(ds[0].severity, analysis::Severity::Error);
  EXPECT_EQ(ds[0].subject, "src/x.cpp:10");
  EXPECT_NE(ds[0].message.find("LedgerTest.refuted"), std::string::npos);
}

TEST(AllocLedger, ResetZeroesEveryCounter) {
  alloc::Ledger ledger;
  ledger.reset();
  ledger.install();
  {
    PASCHED_ALLOC_HOT_SCOPE("LedgerTest.resettable");
    churn(64);
  }
  ledger.remove();
  ASSERT_NE(find_row(ledger.report(), "LedgerTest.resettable"), nullptr);
  ledger.reset();
  const alloc::AllocLedgerReport rep = ledger.report();
  EXPECT_EQ(find_row(rep, "LedgerTest.resettable"), nullptr) << rep.str();
  EXPECT_EQ(rep.total_allocs, 0u);
}

TEST(AllocLedger, NothingIsCountedWhileRemoved) {
  alloc::Ledger ledger;
  ledger.reset();
  {
    PASCHED_ALLOC_HOT_SCOPE("LedgerTest.uninstalled");
    churn(64);
  }
  const alloc::AllocLedgerReport rep = ledger.report();
  EXPECT_EQ(find_row(rep, "LedgerTest.uninstalled"), nullptr) << rep.str();
}

TEST(AllocLedger, FreesFollowTheScopeThatReleases) {
  alloc::Ledger ledger;
  ledger.reset();
  ledger.install();
  {
    PASCHED_ALLOC_HOT_SCOPE("LedgerTest.frees");
    std::vector<long>* v = new std::vector<long>(32);
    delete v;
  }
  ledger.remove();
  const alloc::AllocLedgerReport rep = ledger.report();
  const alloc::SiteAllocRow* row = find_row(rep, "LedgerTest.frees");
  ASSERT_NE(row, nullptr) << rep.str();
  EXPECT_GE(row->hot_allocs, 2u);  // the vector object and its buffer
  EXPECT_GE(row->hot_frees, 2u);
}

TEST(AllocLedger, ReportRanksSitesByHotTraffic) {
  alloc::Ledger ledger;
  ledger.reset();
  ledger.install();
  {
    PASCHED_ALLOC_HOT_SCOPE("LedgerTest.rank_heavy");
    churn(64);
    churn(64);
    churn(64);
  }
  {
    PASCHED_ALLOC_HOT_SCOPE("LedgerTest.rank_light");
    churn(64);
  }
  ledger.remove();
  const alloc::AllocLedgerReport rep = ledger.report();
  std::size_t heavy = rep.sites.size(), light = rep.sites.size();
  for (std::size_t i = 0; i < rep.sites.size(); ++i) {
    if (rep.sites[i].name == "LedgerTest.rank_heavy") heavy = i;
    if (rep.sites[i].name == "LedgerTest.rank_light") light = i;
  }
  ASSERT_LT(heavy, rep.sites.size());
  ASSERT_LT(light, rep.sites.size());
  EXPECT_LT(heavy, light) << rep.str();
}

#endif  // PASCHED_VALIDATE_ENABLED
