// Collective schedules are expanded per rank into Send/Recv micro-ops. These
// tests verify the *global* properties that make a schedule deadlock-free
// and correct, without running the simulator:
//   * every Recv has exactly one matching Send (same peer pair and tag);
//   * the induced dependency graph is acyclic (a valid execution order
//     exists given sequential per-rank execution and spin-waiting receives);
//   * reductions actually gather every rank's contribution at the root, and
//     broadcasts reach every rank (data-flow check);
//   * step counts respect the paper's 2*log2(N) bound for the tree
//     allreduce.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/microop.hpp"

using pasched::mpi::AllreduceAlg;
using pasched::mpi::MicroOp;

namespace {

using Schedule = std::vector<std::vector<MicroOp>>;  // [rank] -> ops

Schedule expand(int size, const std::function<void(std::vector<MicroOp>&, int)>& gen) {
  Schedule s(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) gen(s[static_cast<std::size_t>(r)], r);
  return s;
}

/// Simulates sequential execution with spin-waiting receives: repeatedly run
/// each rank until it blocks on a Recv whose message has not been sent yet.
/// Returns true if every rank finishes (no deadlock, all messages matched).
/// `carry` optionally tracks data-flow: each message carries the union of
/// contribution sets; Recv merges into the receiver's set.
bool executes_to_completion(const Schedule& s,
                            std::vector<std::set<int>>* carry = nullptr) {
  const int n = static_cast<int>(s.size());
  std::vector<std::size_t> pc(static_cast<std::size_t>(n), 0);
  // (src, dst, tag) -> queue of payloads
  std::map<std::tuple<int, int, std::uint64_t>, std::queue<std::set<int>>> net;
  std::vector<std::set<int>> data(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) data[static_cast<std::size_t>(r)].insert(r);

  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < n; ++r) {
      auto& my_pc = pc[static_cast<std::size_t>(r)];
      const auto& ops = s[static_cast<std::size_t>(r)];
      while (my_pc < ops.size()) {
        const MicroOp& op = ops[my_pc];
        if (op.kind == MicroOp::Kind::Send) {
          net[{r, op.peer, op.tag}].push(data[static_cast<std::size_t>(r)]);
          ++my_pc;
          progress = true;
        } else if (op.kind == MicroOp::Kind::Recv) {
          auto it = net.find({op.peer, r, op.tag});
          if (it == net.end() || it->second.empty()) break;  // spin-wait
          for (int v : it->second.front())
            data[static_cast<std::size_t>(r)].insert(v);
          it->second.pop();
          ++my_pc;
          progress = true;
        } else {
          ++my_pc;  // compute / markers are local
          progress = true;
        }
      }
    }
  }
  for (int r = 0; r < n; ++r)
    if (pc[static_cast<std::size_t>(r)] != s[static_cast<std::size_t>(r)].size())
      return false;
  // No unconsumed messages allowed (every send matched by a recv).
  for (const auto& [key, q] : net)
    if (!q.empty()) return false;
  if (carry != nullptr) *carry = data;
  return true;
}

int count_p2p(const Schedule& s) {
  int sends = 0;
  for (const auto& ops : s)
    for (const auto& op : ops)
      if (op.kind == MicroOp::Kind::Send) ++sends;
  return sends;
}

}  // namespace

// ---------------------------------------------------------------------------
// Parameterized over communicator sizes (powers of two, odd sizes, primes).
// ---------------------------------------------------------------------------
class CollectiveSizes : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 24, 31,
                                           32, 59, 64, 100, 128, 255, 256,
                                           944));

TEST_P(CollectiveSizes, ReduceGathersAllContributionsAtRoot) {
  const int n = GetParam();
  auto s = expand(n, [n](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_reduce(out, r, n, 0, 8, 0);
  });
  std::vector<std::set<int>> data;
  ASSERT_TRUE(executes_to_completion(s, &data));
  EXPECT_EQ(data[0].size(), static_cast<std::size_t>(n))
      << "root must see every rank's contribution";
}

TEST_P(CollectiveSizes, ReduceWithNonZeroRoot) {
  const int n = GetParam();
  const int root = (n > 1) ? n / 2 : 0;
  auto s = expand(n, [n, root](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_reduce(out, r, n, root, 8, 0);
  });
  std::vector<std::set<int>> data;
  ASSERT_TRUE(executes_to_completion(s, &data));
  EXPECT_EQ(data[static_cast<std::size_t>(root)].size(),
            static_cast<std::size_t>(n));
}

TEST_P(CollectiveSizes, BcastReachesEveryRank) {
  const int n = GetParam();
  auto s = expand(n, [n](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_bcast(out, r, n, 0, 8, 0);
  });
  std::vector<std::set<int>> data;
  ASSERT_TRUE(executes_to_completion(s, &data));
  for (int r = 0; r < n; ++r)
    EXPECT_TRUE(data[static_cast<std::size_t>(r)].count(0))
        << "rank " << r << " missing the root's data";
}

TEST_P(CollectiveSizes, TreeAllreduceIsCorrectAndBounded) {
  const int n = GetParam();
  auto s = expand(n, [n](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_allreduce(out, r, n, 8, 0,
                                   AllreduceAlg::BinomialTree);
  });
  std::vector<std::set<int>> data;
  ASSERT_TRUE(executes_to_completion(s, &data));
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(data[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(n))
        << "rank " << r << " must end with the full reduction";
  // "The standard tree algorithm ... does no more than 2*log2(N) separate
  // point to point communications" — per rank on the critical path; total
  // sends are bounded by 2*(N-1).
  EXPECT_LE(count_p2p(s), 2 * (n - 1) + 2);
}

TEST_P(CollectiveSizes, RecursiveDoublingAllreduceIsCorrect) {
  const int n = GetParam();
  auto s = expand(n, [n](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_allreduce(out, r, n, 8, 0,
                                   AllreduceAlg::RecursiveDoubling);
  });
  std::vector<std::set<int>> data;
  ASSERT_TRUE(executes_to_completion(s, &data));
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(data[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(n));
}

TEST_P(CollectiveSizes, BarrierCompletesWithoutDeadlock) {
  const int n = GetParam();
  auto s = expand(n, [n](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_barrier(out, r, n, 0);
  });
  EXPECT_TRUE(executes_to_completion(s));
}

TEST_P(CollectiveSizes, AllgatherRingDistributesEverything) {
  const int n = GetParam();
  if (n > 128) GTEST_SKIP() << "ring is O(N^2) messages; bounded here";
  auto s = expand(n, [n](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_allgather_ring(out, r, n, 64, 0);
  });
  std::vector<std::set<int>> data;
  ASSERT_TRUE(executes_to_completion(s, &data));
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(data[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(n));
}

TEST_P(CollectiveSizes, AllgatherBruckDistributesEverythingInLogRounds) {
  const int n = GetParam();
  auto s = expand(n, [n](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_allgather_bruck(out, r, n, 64, 0);
  });
  std::vector<std::set<int>> data;
  ASSERT_TRUE(executes_to_completion(s, &data));
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(data[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(n));
  // log-round structure: each rank sends ceil(log2 N) messages.
  if (n > 1) {
    int rounds = 0;
    while ((1 << rounds) < n) ++rounds;
    EXPECT_EQ(count_p2p(s), n * rounds);
  }
}

TEST_P(CollectiveSizes, AlltoallPairwiseMatches) {
  const int n = GetParam();
  if (n > 128) GTEST_SKIP() << "O(N^2) messages; bounded here";
  auto s = expand(n, [n](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_alltoall_pairwise(out, r, n, 256, 0);
  });
  std::vector<std::set<int>> data;
  ASSERT_TRUE(executes_to_completion(s, &data));
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(data[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(n))
        << "alltoall must deliver a block from every rank";
  EXPECT_EQ(count_p2p(s), n * (n - 1));
}

TEST_P(CollectiveSizes, HaloExchangeMatches) {
  const int n = GetParam();
  auto s = expand(n, [n](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_halo_exchange(out, r, n, 1024, 0);
  });
  std::vector<std::set<int>> data;
  ASSERT_TRUE(executes_to_completion(s, &data));
  if (n > 1) {
    for (int r = 0; r < n; ++r) {
      EXPECT_TRUE(data[static_cast<std::size_t>(r)].count((r + 1) % n));
      EXPECT_TRUE(data[static_cast<std::size_t>(r)].count((r - 1 + n) % n));
    }
  }
}

TEST_P(CollectiveSizes, BackToBackCollectivesDoNotAliasTags) {
  const int n = GetParam();
  if (n > 256) GTEST_SKIP() << "kept small; tag logic is size-independent";
  // Three consecutive collectives with distinct tag bases, interleaved in
  // each rank's program — exactly how aggregate_trace emits them.
  auto s = expand(n, [n](std::vector<MicroOp>& out, int r) {
    pasched::mpi::append_barrier(out, r, n, 0 * pasched::mpi::kTagStride);
    pasched::mpi::append_allreduce(out, r, n, 8, 1 * pasched::mpi::kTagStride,
                                   AllreduceAlg::BinomialTree);
    pasched::mpi::append_allreduce(out, r, n, 8, 2 * pasched::mpi::kTagStride,
                                   AllreduceAlg::RecursiveDoubling);
  });
  EXPECT_TRUE(executes_to_completion(s));
}

TEST(Collectives, StepsBoundMatchesPaperFormula) {
  EXPECT_EQ(pasched::mpi::tree_allreduce_steps(2), 2);
  EXPECT_EQ(pasched::mpi::tree_allreduce_steps(16), 8);
  EXPECT_EQ(pasched::mpi::tree_allreduce_steps(944), 20);  // ceil(log2)=10
  EXPECT_EQ(pasched::mpi::tree_allreduce_steps(1024), 20);
}

TEST(Collectives, IdealModelScalesLogarithmically) {
  pasched::mpi::MpiConfig cfg;
  const auto t256 = pasched::mpi::ideal_allreduce(
      256, cfg, pasched::sim::Duration::us(20), pasched::sim::Duration::ns(2),
      8);
  const auto t1024 = pasched::mpi::ideal_allreduce(
      1024, cfg, pasched::sim::Duration::us(20), pasched::sim::Duration::ns(2),
      8);
  // 16 vs 20 steps: logarithmic, not linear.
  EXPECT_NEAR(static_cast<double>(t1024.count()) /
                  static_cast<double>(t256.count()),
              20.0 / 16.0, 1e-9);
}

TEST(Collectives, SingleRankSchedulesAreEmpty) {
  std::vector<MicroOp> out;
  pasched::mpi::append_allreduce(out, 0, 1, 8, 0, AllreduceAlg::BinomialTree);
  pasched::mpi::append_barrier(out, 0, 1, 0);
  pasched::mpi::append_halo_exchange(out, 0, 1, 8, 0);
  EXPECT_TRUE(out.empty());
}

TEST(Collectives, InvalidRankRejected) {
  std::vector<MicroOp> out;
  EXPECT_THROW(
      pasched::mpi::append_reduce(out, 5, 4, 0, 8, 0), std::logic_error);
  EXPECT_THROW(pasched::mpi::append_bcast(out, 0, 4, 9, 8, 0),
               std::logic_error);
}
