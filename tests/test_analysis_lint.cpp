// The config linter: every rule fires on a minimal violating configuration
// and stays silent on every shipped preset combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "analysis/lint.hpp"
#include "core/presets.hpp"

using namespace pasched;
using analysis::Diagnostic;
using analysis::LintConfig;
using analysis::RuleSelection;
using analysis::Severity;
using sim::Duration;

namespace {

bool has_rule(const std::vector<Diagnostic>& ds, const std::string& id) {
  return std::any_of(ds.begin(), ds.end(),
                     [&](const Diagnostic& d) { return d.rule == id; });
}

const Diagnostic& get_rule(const std::vector<Diagnostic>& ds,
                           const std::string& id) {
  const auto it = std::find_if(ds.begin(), ds.end(),
                               [&](const Diagnostic& d) { return d.rule == id; });
  EXPECT_NE(it, ds.end()) << "rule " << id << " not found";
  return *it;
}

/// Prototype kernel + paper co-scheduling, no optional sections: the
/// canonical clean baseline every violation test perturbs.
LintConfig clean_base() {
  LintConfig cfg;
  cfg.tunables = core::prototype_kernel();
  cfg.cosched = core::paper_cosched();
  return cfg;
}

}  // namespace

TEST(LintPresets, AllShippedCombinationsAreClean) {
  for (const core::NamedKernelPreset& k : core::named_kernel_presets()) {
    LintConfig cfg;
    cfg.tunables = k.tunables;
    EXPECT_TRUE(analysis::lint(cfg).empty()) << "preset " << k.name;
    for (const core::NamedCoschedPreset& c : core::named_cosched_presets()) {
      cfg.cosched = c.config;
      const auto diags = analysis::lint(cfg);
      EXPECT_TRUE(diags.empty())
          << "preset " << k.name << "+" << c.name << ": "
          << (diags.empty() ? "" : diags.front().str());
    }
  }
}

TEST(LintRules, Psl001FiresOnIoStarvationInversion) {
  LintConfig cfg = clean_base();  // favored 30, mmfsd 40
  cfg.workload_uses_io = true;
  const auto diags = analysis::lint(cfg);
  ASSERT_TRUE(has_rule(diags, "PSL001"));
  EXPECT_EQ(get_rule(diags, "PSL001").severity, Severity::Error);
}

TEST(LintRules, Psl001SilentWithoutIoWorkloadOrWithTunedPriority) {
  LintConfig cfg = clean_base();
  EXPECT_FALSE(has_rule(analysis::lint(cfg), "PSL001"));  // collectives only
  cfg.workload_uses_io = true;
  cfg.cosched = core::io_aware_cosched(cfg.daemons.io.priority);  // 41 vs 40
  EXPECT_FALSE(has_rule(analysis::lint(cfg), "PSL001"));
}

TEST(LintRules, Psl001EqualPriorityIsOnlyAWarning) {
  LintConfig cfg = clean_base();
  cfg.workload_uses_io = true;
  cfg.cosched->favored = cfg.daemons.io.priority;  // tie at 40
  const auto diags = analysis::lint(cfg);
  ASSERT_TRUE(has_rule(diags, "PSL001"));
  EXPECT_EQ(get_rule(diags, "PSL001").severity, Severity::Warning);
}

TEST(LintRules, Psl002FiresWhenUnfavoredShareIsSubTick) {
  LintConfig cfg = clean_base();  // 250 ms big tick
  cfg.cosched->period = Duration::sec(1);
  cfg.cosched->duty = 0.90;  // 100 ms unfavored share < one 250 ms tick
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL002"));
}

TEST(LintRules, Psl003FiresWhenDutyLeavesNoUnfavoredShare) {
  LintConfig cfg = clean_base();
  cfg.cosched->duty = 1.0;  // valid per PSL013, but the guard is gone
  const auto diags = analysis::lint(cfg);
  EXPECT_TRUE(has_rule(diags, "PSL003"));
  EXPECT_FALSE(has_rule(diags, "PSL013"));
}

TEST(LintRules, Psl004FiresWhenHeartbeatDeadlineInsideFavoredStretch) {
  LintConfig cfg = clean_base();  // favored stretch 4.5 s
  cfg.daemons.heartbeat_deadline = Duration::sec(1);
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL004"));
}

TEST(LintRules, Psl005FiresOnDefaultPollingInterval) {
  LintConfig cfg = clean_base();
  cfg.mpi = mpi::MpiConfig{};  // 400 ms default
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL005"));
  cfg.mpi->polling_interval = Duration::sec(400);  // the paper's setting
  EXPECT_FALSE(has_rule(analysis::lint(cfg), "PSL005"));
}

TEST(LintRules, Psl006FiresOnAlignmentWithoutClockSync) {
  LintConfig cfg = clean_base();
  cfg.cosched->sync_clocks = false;
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL006"));
}

TEST(LintRules, Psl007FiresWhenFlipperCannotPreemptFavoredTasks) {
  LintConfig cfg = clean_base();
  cfg.cosched->self_priority = cfg.cosched->favored;
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL007"));
}

TEST(LintRules, Psl008FiresWhenPeriodIsNotWholeTicks) {
  LintConfig cfg = clean_base();  // 250 ms tick
  cfg.cosched->period = Duration::ms(5130);
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL008"));
}

TEST(LintRules, Psl009FiresOnMalformedAdminRecords) {
  LintConfig cfg = clean_base();
  core::AdminFile admin;
  core::PriorityClass bad;
  bad.name = "swapped";
  bad.favored = 100;
  bad.unfavored = 30;
  admin.add(bad);
  cfg.admin = admin;
  const auto diags = analysis::lint(cfg);
  ASSERT_TRUE(has_rule(diags, "PSL009"));
  EXPECT_NE(get_rule(diags, "PSL009").subject.find("swapped"),
            std::string::npos);
}

TEST(LintRules, Psl010FiresOnAlignedButUnsynchronizedTicks) {
  LintConfig cfg;
  cfg.tunables = core::prototype_kernel();
  cfg.tunables.synchronized_ticks = false;
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL010"));
}

TEST(LintRules, Psl011FiresWithoutReversePreemption) {
  LintConfig cfg = clean_base();
  cfg.tunables.rt_reverse_preemption = false;
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL011"));
}

TEST(LintRules, Psl012FiresWhenIpiSlowerThanTick) {
  LintConfig cfg = clean_base();  // 250 ms tick
  cfg.tunables.ipi_latency = Duration::ms(300);
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL012"));
}

TEST(LintRules, Psl013FiresOnContractViolations) {
  LintConfig cfg = clean_base();
  cfg.cosched->favored = 110;  // not below unfavored 100
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL013"));
  cfg = clean_base();
  cfg.cosched->duty = 0.0;
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL013"));
  cfg = clean_base();
  cfg.cosched->period = Duration::zero();
  EXPECT_TRUE(has_rule(analysis::lint(cfg), "PSL013"));
}

TEST(LintSelection, ParseAcceptsAllAndIdLists) {
  EXPECT_TRUE(RuleSelection::parse("all").ids.empty());
  const RuleSelection sel = RuleSelection::parse("PSL001, PSL010");
  EXPECT_TRUE(sel.selected("PSL001"));
  EXPECT_TRUE(sel.selected("PSL010"));
  EXPECT_FALSE(sel.selected("PSL002"));
  EXPECT_THROW((void)RuleSelection::parse("PSL999"), std::logic_error);
}

TEST(LintSelection, FiltersDiagnostics) {
  LintConfig cfg = clean_base();
  cfg.workload_uses_io = true;           // would fire PSL001
  cfg.tunables.rt_reverse_preemption = false;  // would fire PSL011
  const auto diags = analysis::lint(cfg, RuleSelection::parse("PSL011"));
  EXPECT_TRUE(has_rule(diags, "PSL011"));
  EXPECT_FALSE(has_rule(diags, "PSL001"));
}

TEST(LintVocabulary, RegistryAndRenderingAreConsistent) {
  for (const analysis::RuleInfo& r : analysis::all_rules()) {
    EXPECT_EQ(analysis::find_rule(r.id), &r);
    EXPECT_NE(analysis::rule_table().find(r.id), std::string::npos);
  }
  EXPECT_EQ(analysis::find_rule("PSL999"), nullptr);

  Diagnostic d;
  d.rule = "PSL001";
  d.severity = Severity::Error;
  d.subject = "cosched";
  d.message = "msg";
  d.fix_hint = "hint";
  EXPECT_EQ(d.str(), "PSL001 ERROR [cosched] msg (fix: hint)");
  EXPECT_TRUE(analysis::any_errors({d}));
  d.severity = Severity::Warning;
  EXPECT_FALSE(analysis::any_errors({d}));
}
