// Tests for the pasched-race dynamic auditor: the vector-clock monitor's
// happens-before semantics driven directly (PSL201 vs PSL202 vs PSL203
// classification), and the end-to-end drivers — the planted cross-shard
// write regression the CI gate relies on, the zero-interference property of
// a clean audited run, the window-perturbation fuzzer's digest stability on
// a correct core, and counterexample replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "apps/aggregate_trace.hpp"
#include "core/equivalence.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "race/fuzz.hpp"
#include "race/monitor.hpp"
#include "sim/time.hpp"

using namespace pasched;

namespace {

sim::Time at_us(std::int64_t us) { return sim::Time::zero() + sim::Duration::us(us); }

core::SimulationConfig scenario(std::uint64_t seed, bool cosched) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(4);
  cfg.cluster.seed = seed;
  cfg.job.ntasks = 16;
  cfg.job.tasks_per_node = 4;
  cfg.job.seed = seed + 1;
  cfg.use_coscheduler = cosched;
  cfg.cosched = core::paper_cosched();
  if (cosched) cfg.cluster.node.tunables = core::prototype_kernel();
  return cfg;
}

mpi::WorkloadFactory workload() {
  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = 12;
  return apps::aggregate_trace(at);
}

std::vector<std::string> rules(const std::vector<analysis::Diagnostic>& ds) {
  std::vector<std::string> out;
  out.reserve(ds.size());
  for (const analysis::Diagnostic& d : ds) out.push_back(d.rule);
  return out;
}

race::Violation violation(race::Domain accessor, race::Domain last_domain,
                          std::uint64_t last_clock) {
  race::Violation v;
  v.label = "kern.Kernel";
  v.id = 1;
  v.owner = last_domain;
  v.accessor = accessor;
  v.last_domain = last_domain;
  v.last_clock = last_clock;
  v.what = "wake";
  return v;
}

}  // namespace

TEST(RaceMonitor, PostAdmitChainOrdersTheAccessPair) {
  race::Monitor m(3);
  m.on_window_begin(0, at_us(10));  // domain 0 clock -> 1
  m.on_post(0, 1, at_us(30), at_us(5), /*src_seq=*/0);
  m.on_admit(1, 0, /*src_seq=*/0, at_us(30), at_us(20));
  // Domain 1 saw domain 0's clock 1 through the message; an access whose
  // last-access epoch is (0, clock 1) is ordered — a discipline breach but
  // not a race.
  m.report(violation(/*accessor=*/1, /*last_domain=*/0, /*last_clock=*/1));
  const auto r = rules(m.findings());
  ASSERT_EQ(r.size(), 1U);
  EXPECT_EQ(r[0], "PSL201");
}

TEST(RaceMonitor, UnorderedAccessPairIsClassifiedAsRace) {
  race::Monitor m(3);
  m.on_window_begin(0, at_us(10));
  m.on_window_begin(0, at_us(20));  // domain 0 clock -> 2
  // Domain 2 never admitted anything from domain 0: an access with
  // last-access epoch (0, clock 2) is unordered — a true cross-shard race.
  m.report(violation(/*accessor=*/2, /*last_domain=*/0, /*last_clock=*/2));
  const auto r = rules(m.findings());
  ASSERT_EQ(r.size(), 2U);
  EXPECT_EQ(r[0], "PSL201");
  EXPECT_EQ(r[1], "PSL202");
  EXPECT_EQ(m.findings()[1].subject, "kern.Kernel[1]");
}

TEST(RaceMonitor, DeliveryIntoTheDestinationsPastIsPSL203) {
  race::Monitor m(3);
  m.on_post(0, 1, at_us(15), at_us(5), /*src_seq=*/0);
  m.on_admit(1, 0, /*src_seq=*/0, /*t=*/at_us(15), /*dst_now=*/at_us(40));
  const auto f = m.findings();
  ASSERT_EQ(f.size(), 1U);
  EXPECT_EQ(f[0].rule, "PSL203");
  EXPECT_EQ(f[0].subject, "shard 1");
  EXPECT_NE(f[0].message.find("seq 0"), std::string::npos) << f[0].message;
}

TEST(RaceMonitor, BarrierPlanTotallyOrdersAllDomains) {
  race::Monitor m(3);
  m.on_window_begin(0, at_us(10));
  m.on_window_begin(0, at_us(20));
  m.on_window_begin(1, at_us(20));  // no post/admit between 0 and 2
  m.on_plan(at_us(20), /*final_window=*/false);
  // The completion step runs with every worker parked: after it, domain 2
  // has absorbed domain 0's clock 2, so the same access pair that raced in
  // UnorderedAccessPairIsClassifiedAsRace is now ordered.
  m.report(violation(/*accessor=*/2, /*last_domain=*/0, /*last_clock=*/2));
  const auto r = rules(m.findings());
  ASSERT_EQ(r.size(), 1U);
  EXPECT_EQ(r[0], "PSL201");
}

TEST(RaceMonitor, StatsCountEverySeamEvent) {
  race::Monitor m(2);
  m.on_window_begin(0, at_us(10));
  m.on_window_begin(1, at_us(10));
  m.on_post(0, 1, at_us(30), at_us(5), 0);
  m.on_post(0, 1, at_us(31), at_us(6), 1);
  m.on_admit(1, 0, 0, at_us(30), at_us(10));
  m.on_plan(at_us(10), false);
  m.report(violation(1, 0, 1));
  const race::Monitor::Stats s = m.stats();
  EXPECT_EQ(s.windows, 2U);
  EXPECT_EQ(s.posts, 2U);
  EXPECT_EQ(s.admits, 1U);
  EXPECT_EQ(s.plans, 1U);
  EXPECT_GE(s.violations, 1U);
}

// The planted write is detected at an annotated kernel entry point, so the
// check only exists when the annotation layer is compiled in.
#if PASCHED_VALIDATE_ENABLED
TEST(RaceAudit, PlantedCrossShardWriteIsCaughtWithAttribution) {
  race::AuditOptions opt;
  opt.workers = 1;  // logical violation without a physical data race
  opt.plant_cross_shard_write = true;
  opt.plant_at = sim::Duration::us(200);
  const race::AuditRun run =
      race::run_audited(scenario(3, false), workload(), opt);
  ASSERT_FALSE(run.findings.empty());
  EXPECT_TRUE(analysis::any_errors(run.findings));
  bool attributed = false;
  for (const analysis::Diagnostic& d : run.findings)
    if (d.rule == "PSL201" && d.subject == "kern.Kernel[1]") attributed = true;
  EXPECT_TRUE(attributed)
      << "expected a PSL201 naming kern.Kernel[1], got:\n"
      << [&] {
           std::string all;
           for (const auto& d : run.findings) all += "  " + d.str() + "\n";
           return all;
         }();
}
#endif  // PASCHED_VALIDATE_ENABLED

TEST(RaceAudit, CleanRunIsSilentAndDoesNotPerturbTheDigest) {
  const core::SimulationConfig cfg = scenario(5, true);
  race::AuditOptions opt;
  opt.workers = 4;
  const race::AuditRun run = race::run_audited(cfg, workload(), opt);
  EXPECT_TRUE(run.findings.empty());
  EXPECT_TRUE(run.digest.completed);
  // The monitor observed real traffic...
  EXPECT_GT(run.stats.posts, 0U);
  EXPECT_GT(run.stats.windows, 0U);
  EXPECT_GT(run.stats.plans, 0U);
  EXPECT_EQ(run.stats.posts, run.stats.admits);
  // ...without changing a single observable bit of the run.
  core::SimulationConfig plain = cfg;
  plain.parallel = 4;
  const core::CanonicalDigest ref = core::run_canonical(plain, workload());
  EXPECT_EQ(run.digest.hash, ref.hash);
  EXPECT_EQ(run.digest.elapsed.count(), ref.elapsed.count());
}

TEST(RaceFuzz, WindowPerturbationsHoldTheDigestOnACorrectCore) {
  const race::FuzzResult fz =
      race::fuzz_windows(scenario(7, false), workload(), /*iterations=*/5,
                         /*seed=*/9, /*workers=*/2);
  EXPECT_EQ(fz.runs, 6);  // baseline + 5 perturbations
  EXPECT_FALSE(fz.diverged);
  EXPECT_TRUE(fz.findings.empty());
  EXPECT_NE(fz.base_hash, 0U);
}

TEST(RaceFuzz, RecordedPerturbationReplaysToTheSameDigest) {
  const core::SimulationConfig cfg = scenario(11, true);
  race::RecordingRandomSource source(1234);
  race::AuditOptions opt;
  opt.workers = 2;
  opt.window_choice = &source;
  const race::AuditRun recorded = race::run_audited(cfg, workload(), opt);
  ASSERT_GT(source.trace().size(), 0U);
  const race::AuditRun replayed =
      race::replay_schedule(cfg, workload(), source.trace(), /*workers=*/2);
  EXPECT_EQ(replayed.digest.hash, recorded.digest.hash);
  EXPECT_TRUE(replayed.findings.empty());
}
