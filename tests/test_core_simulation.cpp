// The Simulation facade: end-to-end construction, determinism, horizon
// behavior, and the co-scheduler wiring.
#include <gtest/gtest.h>

#include "apps/aggregate_trace.hpp"
#include "apps/channels.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"

using namespace pasched;
using sim::Duration;

namespace {

core::SimulationConfig tiny(bool cosched, std::uint64_t seed = 5) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(2);
  cfg.cluster.seed = seed;
  cfg.job.ntasks = 32;
  cfg.job.tasks_per_node = 16;
  cfg.job.seed = seed + 1;
  cfg.use_coscheduler = cosched;
  cfg.cosched = core::paper_cosched();
  if (cosched) cfg.cluster.node.tunables = core::prototype_kernel();
  return cfg;
}

apps::AggregateTraceConfig tiny_app(int calls = 50) {
  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = calls;
  return at;
}

}  // namespace

TEST(Simulation, RunsToCompletion) {
  core::Simulation sim(tiny(false), apps::aggregate_trace(tiny_app()));
  const auto r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.elapsed.count(), 0);
  EXPECT_GT(r.events, 1000u);
  EXPECT_FALSE(r.any_node_evicted);
  EXPECT_EQ(sim.job().channel(apps::kChanAllreduce).recorded_us.size(), 50u);
  EXPECT_EQ(sim.cosched(), nullptr);
}

TEST(Simulation, CoschedulerWiredWhenRequested) {
  core::SimulationConfig cfg = tiny(true);
  cfg.job.ntasks = 32;
  apps::AggregateTraceConfig at = tiny_app(50);
  at.warmup = Duration::sec(6);
  core::Simulation sim(cfg, apps::aggregate_trace(at));
  const auto r = sim.run();
  EXPECT_TRUE(r.completed);
  ASSERT_NE(sim.cosched(), nullptr);
  EXPECT_EQ(sim.cosched()->total_stats().registered, 32u);
  EXPECT_GT(sim.cosched()->total_stats().windows, 0u);
}

TEST(Simulation, SameSeedIsBitIdentical) {
  auto run = [](std::uint64_t seed) {
    core::Simulation sim(tiny(false, seed), apps::aggregate_trace(tiny_app()));
    sim.run();
    return sim.job().channel(apps::kChanAllreduce).recorded_us;
  };
  const auto a = run(42);
  const auto b = run(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Simulation, DifferentSeedsDiffer) {
  auto run = [](std::uint64_t seed) {
    core::Simulation sim(tiny(false, seed), apps::aggregate_trace(tiny_app()));
    sim.run();
    return sim.job().channel(apps::kChanAllreduce).recorded_us;
  };
  const auto a = run(1);
  const auto b = run(2);
  ASSERT_EQ(a.size(), b.size());
  bool differ = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) differ = true;
  EXPECT_TRUE(differ);
}

TEST(Simulation, HorizonCapsRunawayJobs) {
  core::SimulationConfig cfg = tiny(false);
  cfg.horizon = Duration::ms(50);  // far too short to finish warmup
  apps::AggregateTraceConfig at = tiny_app(100000);
  at.warmup = Duration::sec(30);
  core::Simulation sim(cfg, apps::aggregate_trace(at));
  const auto r = sim.run();
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.elapsed.count(), Duration::ms(50).count());
}

TEST(Simulation, RunTwiceIsRejected) {
  core::Simulation sim(tiny(false), apps::aggregate_trace(tiny_app(5)));
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), std::logic_error);
}
