// Tests for the bounded SPSC ring behind the partitioned core's cross-shard
// pair channels: FIFO order across index wraparound, the full-ring refusal
// contract (try_push returns false, never blocks — the engine's overflow
// lane depends on it), slot teardown on pop, and a two-thread stress run
// exercising the cached-index fast path under real concurrency.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/spsc_ring.hpp"

namespace {

using pasched::util::SpscRing;

TEST(SpscRing, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2U);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2U);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4U);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8U);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 16U);
}

TEST(SpscRing, FifoOrderSurvivesManyWraparounds) {
  // Capacity 4, 1000 elements: the monotone indices wrap the slot array 250
  // times; order and content must be exact throughout.
  SpscRing<int> ring(4);
  int next_push = 0;
  int next_pop = 0;
  while (next_pop < 1000) {
    // Fill to capacity, then drain fully — the worst case for `idx & mask`.
    while (next_push < 1000 && ring.try_push(next_push + 0)) ++next_push;
    for (int* v = ring.front(); v != nullptr; v = ring.front()) {
      EXPECT_EQ(*v, next_pop);
      ring.pop();
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, 1000);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRefusesWithoutBlockingAndRecoversAfterPop) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i + 0));
  // Full: the push must refuse (this is the backpressure signal the
  // engine's overflow lane consumes), and refuse repeatably.
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(99));
  // One pop frees exactly one slot.
  ASSERT_NE(ring.front(), nullptr);
  EXPECT_EQ(*ring.front(), 0);
  ring.pop();
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(99));
  // The refused pushes left no trace: drain yields 1,2,3,4.
  std::vector<int> out;
  for (int* v = ring.front(); v != nullptr; v = ring.front()) {
    out.push_back(*v);
    ring.pop();
  }
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SpscRing, PopResetsTheSlotSoPayloadsDieEagerly) {
  // The engine moves closures with captured state through the ring; a
  // popped slot must release that state now, not when the slot is next
  // overwritten (which may be arbitrarily later on a quiet pair).
  SpscRing<std::shared_ptr<int>> ring(4);
  auto payload = std::make_shared<int>(42);
  std::weak_ptr<int> watch = payload;
  ASSERT_TRUE(ring.try_push(std::move(payload)));
  ASSERT_NE(ring.front(), nullptr);
  ring.pop();
  EXPECT_TRUE(watch.expired());
}

TEST(SpscRing, TwoThreadStressPreservesEverySequencedElement) {
  // Producer pushes 0..N-1 (spinning on full), consumer pops until it has
  // all N. Exercises the cached-index refresh on both sides; run under TSan
  // this also checks the release/acquire pairing on head_/tail_.
  constexpr std::uint64_t kN = 200'000;
  SpscRing<std::uint64_t> ring(64);
  std::uint64_t sum = 0;
  std::uint64_t popped = 0;
  bool ordered = true;
  std::thread consumer([&ring, &sum, &popped, &ordered] {
    while (popped < kN) {
      std::uint64_t* v = ring.front();
      if (v == nullptr) {
        std::this_thread::yield();
        continue;
      }
      if (*v != popped) ordered = false;
      sum += *v;
      ring.pop();
      ++popped;
    }
  });
  for (std::uint64_t i = 0; i < kN; ++i)
    while (!ring.try_push(i + 0)) std::this_thread::yield();
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(popped, kN);
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

}  // namespace
