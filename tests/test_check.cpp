// The validation layer end to end: the thread-state transition table, the
// engine's causality/structural audits, and the Auditor's conservation and
// run-queue invariants — including deliberate violations of each invariant
// class, asserting the checks report them as check::CheckError.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "check/transitions.hpp"
#include "kern/kernel.hpp"
#include "sim/engine.hpp"

using namespace pasched;
using namespace pasched::sim::literals;
using check::Auditor;
using check::CheckError;
using check::ConservationReport;
using kern::Kernel;
using kern::RunDecision;
using kern::Thread;
using kern::ThreadSpec;
using kern::ThreadState;
using sim::Duration;
using sim::Engine;
using sim::Time;

namespace {

struct Script final : kern::ThreadClient {
  std::vector<RunDecision> steps;
  std::size_t pc = 0;
  bool exit_at_end = false;

  RunDecision next(Time) override {
    if (pc < steps.size()) return steps[pc++];
    return exit_at_end ? RunDecision::exit() : RunDecision::block();
  }
};

kern::Tunables quiet_tunables() {
  kern::Tunables t;
  t.tick_cost = Duration::ns(1);
  t.context_switch_cost = Duration::ns(1);
  return t;
}

ThreadSpec spec(const char* name, kern::Priority prio, kern::CpuId cpu) {
  ThreadSpec s;
  s.name = name;
  s.base_priority = prio;
  s.fixed_priority = true;
  s.home_cpu = cpu;
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Thread-state transition table
// ---------------------------------------------------------------------------

TEST(CheckTransitions, TableMatchesTheStateMachineExactly) {
  using S = ThreadState;
  const S all[] = {S::Ready, S::Running, S::Blocked, S::Done};
  for (const S from : all) {
    for (const S to : all) {
      const bool legal = (from == S::Blocked && to == S::Ready) ||
                         (from == S::Ready && to == S::Running) ||
                         (from == S::Running &&
                          (to == S::Ready || to == S::Blocked || to == S::Done));
      EXPECT_EQ(check::thread_transition_ok(from, to), legal)
          << check::transition_str(from, to);
    }
  }
}

TEST(CheckTransitions, DoneIsTerminal) {
  using S = ThreadState;
  for (const S to : {S::Ready, S::Running, S::Blocked, S::Done})
    EXPECT_FALSE(check::thread_transition_ok(S::Done, to));
}

// ---------------------------------------------------------------------------
// Engine causality and structure
// ---------------------------------------------------------------------------

TEST(CheckEngine, SchedulingInThePastIsRejected) {
  Engine e;
  e.schedule_at(Time::zero() + 10_ms, [] {});
  e.run();
  ASSERT_EQ(e.now(), Time::zero() + 10_ms);
  // Invariant class 1: engine causality. schedule_at strictly before now()
  // must be reported, not silently reordered.
  EXPECT_THROW(e.schedule_at(Time::zero() + 5_ms, [] {}), std::logic_error);
}

TEST(CheckEngine, StructuralAuditPassesThroughChurn) {
  Engine e;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(e.schedule_after(Duration::us(i % 7), [] {}));
  for (std::size_t i = 0; i < ids.size(); i += 3) e.cancel(ids[i]);
  e.check_consistent();
  e.run();
  e.check_consistent();
  EXPECT_EQ(e.events_pending(), 0u);
}

// ---------------------------------------------------------------------------
// Conservation audit
// ---------------------------------------------------------------------------

TEST(CheckConservation, HoldsAfterAMixedRun) {
  Engine e;
  Kernel k(e, 0, 2, quiet_tunables(), Duration::zero(), 0);
  Script a, b, c;
  a.steps = {RunDecision::compute(3_ms), RunDecision::block(),
             RunDecision::compute(1_ms)};
  a.exit_at_end = true;
  b.steps = {RunDecision::compute(5_ms)};
  b.exit_at_end = true;
  c.steps = {RunDecision::compute(2_ms), RunDecision::compute(2_ms)};
  c.exit_at_end = true;
  Thread& ta = k.create_thread(spec("a", 50, 0), a);
  Thread& tb = k.create_thread(spec("b", 60, 0), b);
  Thread& tc = k.create_thread(spec("c", 55, 1), c);
  k.start();
  k.wake(ta);
  k.wake(tb);
  k.wake(tc);
  e.run_until(Time::zero() + 4_ms);  // mid-run audit: in-flight work exists
  Auditor::verify_conservation(k);
  Auditor::verify_runqueues(k);
  e.run_until(Time::zero() + 50_ms);
  if (ta.state() == ThreadState::Blocked) k.wake(ta);  // finish a's last leg
  e.run_until(Time::zero() + 100_ms);
  Auditor::verify_conservation(k);
  Auditor::verify_runqueues(k);
  e.check_consistent();

  const ConservationReport r = Auditor::conservation(k);
  EXPECT_EQ(r.ncpus, 2);
  EXPECT_EQ(r.busy + r.idle, r.capacity);
  EXPECT_EQ(r.busy, r.thread_cpu + r.tick_stretch + r.in_flight);
  EXPECT_GE(r.thread_cpu.count(), Duration::ms(13).count());
}

TEST(CheckConservation, HoldsWhileAThreadSpins) {
  Engine e;
  Kernel k(e, 0, 1, quiet_tunables(), Duration::zero(), 0);
  Script s;
  s.steps = {RunDecision::compute(1_ms), RunDecision::spin()};
  Thread& t = k.create_thread(spec("spinner", 60, 0), s);
  k.start();
  k.wake(t);
  e.run_until(Time::zero() + 10_ms);  // spinning since ~1 ms: in-flight time
  const ConservationReport r = Auditor::conservation(k);
  EXPECT_GT(r.in_flight.count(), 0);
  Auditor::verify_conservation(r);
  Auditor::verify_runqueues(k);
}

// Invariant class 3: accounting mismatch. A ledger whose charges leak (a
// thread charged for time no CPU spent) must be reported.
TEST(CheckConservation, TamperedLedgerIsReported) {
  Engine e;
  Kernel k(e, 0, 1, quiet_tunables(), Duration::zero(), 0);
  Script s;
  s.steps = {RunDecision::compute(2_ms)};
  s.exit_at_end = true;
  Thread& t = k.create_thread(spec("t", 60, 0), s);
  k.start();
  k.wake(t);
  e.run_until(Time::zero() + 20_ms);
  ConservationReport r = Auditor::conservation(k);
  Auditor::verify_conservation(r);  // sane before tampering

  ConservationReport leak = r;
  leak.thread_cpu += 1_ms;  // charge without occupancy
  EXPECT_THROW(Auditor::verify_conservation(leak), CheckError);

  ConservationReport lost = r;
  lost.idle += 1_ms;  // wall clock that no CPU accounts for
  EXPECT_THROW(Auditor::verify_conservation(lost), CheckError);

  ConservationReport skew = r;
  skew.class_cpu += 1_ms;  // per-class and per-thread ledgers disagree
  EXPECT_THROW(Auditor::verify_conservation(skew), CheckError);
}

// ---------------------------------------------------------------------------
// Kernel-internal enforcement (requires a PASCHED_VALIDATE build)
// ---------------------------------------------------------------------------

// Invariant class 2: illegal ThreadState transition. wake() on a thread that
// is not Blocked would be Ready -> Ready; the kernel's precondition reports
// it before the transition table would.
TEST(CheckKernel, WakingANonBlockedThreadIsReported) {
  Engine e;
  Kernel k(e, 0, 1, quiet_tunables(), Duration::zero(), 0);
  Script s1, s2;
  s1.steps = {RunDecision::compute(5_ms)};
  s2.steps = {RunDecision::compute(1_ms)};
  Thread& running = k.create_thread(spec("running", 50, 0), s1);
  Thread& ready = k.create_thread(spec("ready", 90, 0), s2);
  k.start();
  k.wake(running);
  k.wake(ready);
  ASSERT_EQ(ready.state(), ThreadState::Ready);
  EXPECT_THROW(k.wake(ready), std::logic_error);
  EXPECT_THROW(k.wake(running), std::logic_error);
}

TEST(CheckKernel, RunQueueAuditSeesEveryStateCombination) {
  Engine e;
  Kernel k(e, 0, 2, quiet_tunables(), Duration::zero(), 0);
  Script s1, s2, s3, s4;
  s1.steps = {RunDecision::compute(8_ms)};
  s2.steps = {RunDecision::compute(8_ms)};
  s3.steps = {RunDecision::compute(8_ms)};
  s4.steps = {RunDecision::compute(1_ms)};
  s4.exit_at_end = true;
  Thread& r1 = k.create_thread(spec("r1", 50, 0), s1);
  Thread& r2 = k.create_thread(spec("r2", 50, 1), s2);
  Thread& q1 = k.create_thread(spec("q1", 70, 0), s3);
  Thread& done = k.create_thread(spec("d", 40, 1), s4);
  k.start();
  k.wake(done);
  e.run_until(Time::zero() + 2_ms);
  k.wake(r1);
  k.wake(r2);
  k.wake(q1);
  e.run_until(Time::zero() + 3_ms);
  ASSERT_EQ(r1.state(), ThreadState::Running);
  ASSERT_EQ(r2.state(), ThreadState::Running);
  ASSERT_EQ(q1.state(), ThreadState::Ready);
  ASSERT_EQ(done.state(), ThreadState::Done);
  Auditor::verify_runqueues(k);  // Running x2, Ready x1, Done x1: consistent
  Auditor::verify_conservation(k);
}
