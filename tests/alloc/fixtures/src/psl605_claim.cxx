// PSL605 semantics: a clean hot function earns the allocation-free claim;
// a waived (srclint-ok) allocation silences the finding but forfeits the
// claim — a waiver is not a certificate.
PASCHED_HOT long next_due(const long* heap, int n) {
  return n > 0 ? heap[0] : -1;
}

PASCHED_HOT void spill_waived(int n) {
  int* tmp = new int[8];  // srclint-ok(PSL601): fixture - waiver forfeits the claim
  tmp[0] = n;
  delete[] tmp;
}
