// Silent twin of psl601_fire: the hot function draws from a pre-sized
// slab and placement-constructs into owned storage — no heap traffic on
// the event path (and therefore a PSL605 allocation-free claim).
struct Ev {
  long t = 0;
};

struct Slab {
  unsigned char cells[64][sizeof(Ev)];
  int free_top = 63;
};

PASCHED_HOT Ev* fire_one(Slab& slab) {
  if (slab.free_top < 0) return nullptr;
  void* cell = slab.cells[slab.free_top--];
  Ev* e = new (cell) Ev{};
  e->t = slab.free_top;
  return e;
}
