// Planted PSL602: a member container grows once per hot call with no
// reserve/clear discipline anywhere in the file — steady-state events
// eventually hit a doubling reallocation mid-window.
#include <vector>

struct Batcher {
  std::vector<int> out_;

  PASCHED_HOT void push(int v) { out_.push_back(v); }
};
