// Silent twin of psl604_fire: a PASCHED_ARENA type that honors the
// contract — flat trivially-destructible scalars, memcpy-relocatable.
struct PASCHED_ARENA Payload {
  long t = 0;
  unsigned kind = 0;
  unsigned a = 0;
  unsigned b = 0;
};
