// Planted PSL601: heap allocation on the per-event path, three ways — a
// naked `new`, a C allocator call, and an owning container constructed
// fresh per call.
#include <cstdlib>
#include <vector>

struct Ev {
  long t = 0;
};

PASCHED_HOT void fire_one(int n) {
  Ev* spill = new Ev{};
  void* raw = std::malloc(64);
  std::vector<Ev> batch(static_cast<std::size_t>(n));
  spill->t = batch.empty() ? 0 : n;
  std::free(raw);
  delete spill;
}
