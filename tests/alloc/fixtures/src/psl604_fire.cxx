// Planted PSL604: an arena-annotated type violating every clause of the
// contract — a destructor (slabs never run them), a virtual member (vptr
// breaks memcpy relocation), an owning member (teardown leaks it), and a
// naked allocation in a member function.
#include <string>

struct PASCHED_ARENA Payload {
  std::string tag;
  virtual void describe();
  ~Payload();
  void init() { stash_ = new int[4]; }
  int* stash_ = nullptr;
};
