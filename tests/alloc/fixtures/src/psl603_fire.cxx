// Planted PSL603: an event-resident type (HeapItem is on the analyzer's
// layout list) holding an owning container, a smart pointer, and a raw
// pointer — three pointer chases out of the slab's cache footprint.
#include <memory>
#include <string>

struct HeapItem {
  long t = 0;
  std::string tag;
  std::unique_ptr<int> box;
  int* owner = nullptr;
};
