// Silent twin of psl603_fire: the event-resident type is four flat
// scalars — the whole entry fits the slab's cache line, nothing to chase.
struct HeapItem {
  long t = 0;
  unsigned long long seq = 0;
  unsigned slot = 0;
  unsigned gen = 0;
};
