// Silent twin of psl602_fire: the same growth call, but the file carries
// the reuse discipline (a cold reserve helper), so the push_back can only
// append into pre-sized capacity.
#include <vector>

struct Batcher {
  std::vector<int> out_;

  void grow(std::size_t n) { out_.reserve(n); }

  PASCHED_HOT void push(int v) { out_.push_back(v); }
};
