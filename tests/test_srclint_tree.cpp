// Whole-tree gates for pasched-srclint: the repository itself must scan
// clean (PSL401-406 are CI-enforced, so a regression here is a build
// failure), and the planted fixture corpus must trip every rule — both
// directions of the gate, the same pair CI asserts via the tool binary.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "srclint/compiledb.hpp"
#include "srclint/runner.hpp"

using namespace pasched;

namespace {

srclint::SrclintReport scan_tree(const std::string& root) {
  srclint::SrclintOptions opts;
  opts.root = root;
  return srclint::run_tree(opts);
}

}  // namespace

TEST(SrclintTree, RepositoryScansClean) {
  const srclint::SrclintReport rep = scan_tree(PASCHED_REPO_ROOT);
  EXPECT_TRUE(rep.findings.empty()) << rep.str();
  // Sanity: the scan actually covered the tree (a discovery regression that
  // found nothing would also "pass" the emptiness check).
  EXPECT_GT(rep.files_scanned, 100u);
  // The hot-path contract is load-bearing: the engine/shard/kernel
  // annotations must be visible to PSL403.
  EXPECT_GE(rep.stats.hot_functions, 20u);
  EXPECT_GT(rep.stats.macro_calls, 0u);
}

TEST(SrclintTree, PlantedCorpusTripsEveryRule) {
  const srclint::SrclintReport rep =
      scan_tree(std::string(PASCHED_REPO_ROOT) + "/tests/srclint/fixtures");
  EXPECT_TRUE(analysis::any_errors(rep.findings));
  std::set<std::string> rules;
  for (const analysis::Diagnostic& d : rep.findings) rules.insert(d.rule);
  for (const char* r :
       {"PSL401", "PSL402", "PSL403", "PSL404", "PSL405", "PSL406"})
    EXPECT_TRUE(rules.count(r) == 1) << "corpus never trips " << r;
}

TEST(SrclintTree, FixtureCorpusNeverLeaksIntoCleanScans) {
  const srclint::FileSet fset =
      srclint::discover_files(PASCHED_REPO_ROOT, "");
  for (const std::string& p : fset.rel_paths)
    EXPECT_EQ(p.find("srclint/fixtures/"), std::string::npos) << p;
}

TEST(SrclintTree, CompileDbExtractionReadsFileEntries) {
  const std::string db = R"([
    {"directory": "/b", "command": "c++ -c x.cpp", "file": "/r/src/a.cpp"},
    {"file": "/r/src/b \"q\".cpp", "output": "b.o"}
  ])";
  const auto files = srclint::compile_db_files(db);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "/r/src/a.cpp");
  EXPECT_EQ(files[1], "/r/src/b \"q\".cpp");
}

TEST(SrclintTree, EveryRegisteredPsl4RuleFiresSomewhereInTheCorpus) {
  // Registry/implementation coherence: a rule registered in the diagnostic
  // vocabulary but implemented nowhere (or vice versa) is a silent gap.
  const srclint::SrclintReport rep =
      scan_tree(std::string(PASCHED_REPO_ROOT) + "/tests/srclint/fixtures");
  for (const analysis::RuleInfo& r : analysis::all_rules()) {
    const std::string id(r.id);
    if (id.compare(0, 4, "PSL4") != 0) continue;
    EXPECT_TRUE(std::any_of(rep.findings.begin(), rep.findings.end(),
                            [&](const analysis::Diagnostic& d) {
                              return d.rule == id;
                            }))
        << id << " is registered but the corpus cannot make it fire";
  }
}
