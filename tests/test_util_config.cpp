// Config reader and command-line flags.
#include <gtest/gtest.h>

#include "util/config.hpp"
#include "util/flags.hpp"

using pasched::util::Config;
using pasched::util::Flags;

TEST(Config, ParsesSectionsAndKeys) {
  const Config c = Config::parse(R"(
# comment
top_key = 1
[cluster]
nodes = 59
cpus  = 16
; another comment style
[cosched]
duty = 0.9
enabled = true
name = paper defaults
)");
  EXPECT_EQ(c.get_int("", "top_key", 0), 1);
  EXPECT_EQ(c.get_int("cluster", "nodes", 0), 59);
  EXPECT_EQ(c.get_int("cluster", "cpus", 0), 16);
  EXPECT_NEAR(c.get_double("cosched", "duty", 0), 0.9, 1e-12);
  EXPECT_TRUE(c.get_bool("cosched", "enabled", false));
  EXPECT_EQ(c.get_or("cosched", "name", ""), "paper defaults");
  EXPECT_FALSE(c.has("cluster", "missing"));
  EXPECT_EQ(c.get_int("cluster", "missing", 42), 42);
  EXPECT_EQ(c.sections().size(), 3u);  // "", cluster, cosched
  EXPECT_EQ(c.keys("cluster").size(), 2u);
}

TEST(Config, SetOverridesAndCreates) {
  Config c;
  c.set("a", "k", "v");
  EXPECT_EQ(c.get_or("a", "k", ""), "v");
  c.set("a", "k", "w");
  EXPECT_EQ(c.get_or("a", "k", ""), "w");
}

TEST(Config, RejectsMalformedInput) {
  EXPECT_THROW(Config::parse("[unterminated"), std::logic_error);
  EXPECT_THROW(Config::parse("no equals sign here"), std::logic_error);
  EXPECT_THROW(Config::parse("= value with empty key"), std::logic_error);
  const Config c = Config::parse("[s]\nk = not_a_number");
  EXPECT_THROW((void)c.get_int("s", "k", 0), std::logic_error);
  EXPECT_THROW((void)c.get_bool("s", "k", false), std::logic_error);
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/path/zzz.ini"), std::logic_error);
}

namespace {
Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  for (const char* a : args) argv.push_back(a);
  return Flags(static_cast<int>(argv.size()), argv.data());
}
}  // namespace

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const Flags f = make_flags({"--nodes=59", "--calls", "1000", "--verbose"});
  EXPECT_EQ(f.get_int("nodes", 0), 59);
  EXPECT_EQ(f.get_int("calls", 0), 1000);
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_EQ(f.get_int("missing", 7), 7);
}

TEST(Flags, PositionalArgumentsPreserved) {
  const Flags f = make_flags({"input.txt", "--x=1", "more"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(Flags, TypeErrorsThrow) {
  const Flags f = make_flags({"--n=abc"});
  EXPECT_THROW((void)f.get_int("n", 0), std::logic_error);
  EXPECT_THROW((void)f.get_bool("n", false), std::logic_error);
}

TEST(Flags, UnknownDetection) {
  const Flags f = make_flags({"--known=1", "--typo=2"});
  const auto unknown = f.unknown({"known"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, DoubleValues) {
  const Flags f = make_flags({"--duty=0.95"});
  EXPECT_NEAR(f.get_double("duty", 0), 0.95, 1e-12);
}
