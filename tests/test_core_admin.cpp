// /etc/poe.priority parsing and the MP_PRIORITY admission contract (§4).
#include <gtest/gtest.h>

#include "core/admin.hpp"

using pasched::core::AdminFile;
using pasched::core::PriorityClass;

namespace {
constexpr const char* kSample = R"(
# /etc/poe.priority — root-only writable, identical on each node
# class:uid:favored:unfavored:period_seconds:duty_percent
hpc_high:1001:30:100:5:90
hpc_high:1002:30:100:5:95
io_heavy:*:41:100:10:90
gentle:2000:55:80:10.5:70
)";
}  // namespace

TEST(AdminFile, ParsesRecordsAndComments) {
  const AdminFile f = AdminFile::parse(kSample);
  ASSERT_EQ(f.records().size(), 4u);
  EXPECT_EQ(f.records()[0].name, "hpc_high");
  EXPECT_EQ(f.records()[0].uid, 1001);
  EXPECT_EQ(f.records()[0].favored, 30);
  EXPECT_EQ(f.records()[0].unfavored, 100);
  EXPECT_EQ(f.records()[0].period.count(), 5'000'000'000);
  EXPECT_NEAR(f.records()[0].duty, 0.90, 1e-12);
  EXPECT_EQ(f.records()[2].uid, -1);  // wildcard user
  EXPECT_NEAR(f.records()[3].period.to_seconds(), 10.5, 1e-9);
}

TEST(AdminFile, MatchRequiresClassAndUser) {
  const AdminFile f = AdminFile::parse(kSample);
  const auto hit = f.match("hpc_high", 1001);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->duty, 0.90, 1e-12);
  // Second record for a different user of the same class.
  const auto hit2 = f.match("hpc_high", 1002);
  ASSERT_TRUE(hit2.has_value());
  EXPECT_NEAR(hit2->duty, 0.95, 1e-12);
  // Unknown user of a uid-restricted class: no co-scheduling (§4: attention
  // message, job runs unscheduled).
  EXPECT_FALSE(f.match("hpc_high", 9999).has_value());
  // Wildcard class admits anyone.
  EXPECT_TRUE(f.match("io_heavy", 9999).has_value());
  EXPECT_FALSE(f.match("nonexistent", 1001).has_value());
}

TEST(AdminFile, FirstMatchWins) {
  AdminFile f;
  PriorityClass a;
  a.name = "c";
  a.uid = -1;
  a.favored = 30;
  f.add(a);
  PriorityClass b = a;
  b.favored = 41;
  f.add(b);
  EXPECT_EQ(f.match("c", 1)->favored, 30);
}

TEST(AdminFile, RejectsMalformedRecords) {
  EXPECT_THROW(AdminFile::parse("too:few:fields"), std::logic_error);
  EXPECT_THROW(AdminFile::parse("c:1:30:100:5:90:extra"), std::logic_error);
  EXPECT_THROW(AdminFile::parse(":1:30:100:5:90"), std::logic_error);
  EXPECT_THROW(AdminFile::parse("c:x:30:100:5:90"), std::logic_error);
  EXPECT_THROW(AdminFile::parse("c:1:abc:100:5:90"), std::logic_error);
  EXPECT_THROW(AdminFile::parse("c:1:300:100:5:90"), std::logic_error);
  EXPECT_THROW(AdminFile::parse("c:1:30:100:0:90"), std::logic_error);
  EXPECT_THROW(AdminFile::parse("c:1:30:100:5:150"), std::logic_error);
  EXPECT_THROW(AdminFile::parse("c:1:30:100:5:-5"), std::logic_error);
}

TEST(AdminFile, EmptyFileMatchesNothing) {
  const AdminFile f = AdminFile::parse("\n# only comments\n\n");
  EXPECT_TRUE(f.records().empty());
  EXPECT_FALSE(f.match("anything", 0).has_value());
}
