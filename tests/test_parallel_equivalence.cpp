// Property test for partitioned execution: for many seeds, the classic
// single-queue engine, --parallel=1, --parallel=4, and --parallel=8 must
// produce the same canonical (t, node, per-node seq) history digest —
// identical scheduling intervals, identical analyzer event streams,
// identical per-rank finish times — on a multi-node cluster with live
// daemons and a co-scheduler; and the per-pair chained-window planner must
// digest-match the legacy global planner on the same runs.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/aggregate_trace.hpp"
#include "core/equivalence.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "sim/planner.hpp"

using namespace pasched;

namespace {

core::SimulationConfig scenario(std::uint64_t seed, bool cosched) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(4);
  cfg.cluster.seed = seed;
  cfg.job.ntasks = 16;
  cfg.job.tasks_per_node = 4;
  cfg.job.seed = seed + 1;
  cfg.use_coscheduler = cosched;
  cfg.cosched = core::paper_cosched();
  if (cosched) cfg.cluster.node.tunables = core::prototype_kernel();
  return cfg;
}

mpi::WorkloadFactory workload() {
  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = 12;
  return apps::aggregate_trace(at);
}

core::CanonicalDigest digest(std::uint64_t seed, bool cosched, int parallel,
                             sim::PlannerMode planner =
                                 sim::PlannerMode::PerPair) {
  core::SimulationConfig cfg = scenario(seed, cosched);
  cfg.parallel = parallel;
  cfg.planner = planner;
  return core::run_canonical(cfg, workload());
}

}  // namespace

TEST(ParallelEquivalence, TenSeedsMatchAcrossAllExecutionModes) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const bool cosched = seed % 2 == 0;  // alternate vanilla / prototype
    const core::CanonicalDigest legacy = digest(seed, cosched, 0);
    const core::CanonicalDigest par1 = digest(seed, cosched, 1);
    const core::CanonicalDigest par4 = digest(seed, cosched, 4);
    const core::CanonicalDigest par8 = digest(seed, cosched, 8);
    ASSERT_TRUE(legacy.completed) << "seed " << seed;
    EXPECT_TRUE(par1.completed) << "seed " << seed;
    EXPECT_TRUE(par4.completed) << "seed " << seed;
    EXPECT_TRUE(par8.completed) << "seed " << seed;
    EXPECT_EQ(legacy.elapsed.count(), par1.elapsed.count())
        << "seed " << seed;
    EXPECT_EQ(legacy.hash, par1.hash) << "legacy vs --parallel=1, seed "
                                      << seed;
    EXPECT_EQ(par1.hash, par4.hash) << "--parallel=1 vs --parallel=4, seed "
                                    << seed;
    EXPECT_EQ(par4.hash, par8.hash) << "--parallel=4 vs --parallel=8, seed "
                                    << seed;
  }
}

TEST(ParallelEquivalence, TenSeedsMatchAcrossWindowPlanners) {
  // The per-pair chained-window planner must replay the exact history the
  // legacy global planner produces — different synchronization schedules,
  // identical simulations. This is the audit gate's core claim in test
  // form: window boundaries are invisible to the simulated workload.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const bool cosched = seed % 2 == 1;
    const core::CanonicalDigest perpair =
        digest(seed, cosched, 4, sim::PlannerMode::PerPair);
    const core::CanonicalDigest global =
        digest(seed, cosched, 4, sim::PlannerMode::Global);
    ASSERT_TRUE(perpair.completed) << "seed " << seed;
    EXPECT_TRUE(global.completed) << "seed " << seed;
    EXPECT_EQ(perpair.hash, global.hash)
        << "per-pair vs global planner, seed " << seed;
    EXPECT_EQ(perpair.elapsed.count(), global.elapsed.count())
        << "seed " << seed;
  }
}

TEST(ParallelEquivalence, ParallelModeIsInternallyDeterministic) {
  // Same seed, same worker count, run twice: bit-identical.
  const core::CanonicalDigest a = digest(77, true, 4);
  const core::CanonicalDigest b = digest(77, true, 4);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.elapsed.count(), b.elapsed.count());
}

TEST(ParallelEquivalence, LinkBandwidthContentionIsRejected) {
  core::SimulationConfig cfg = scenario(3, false);
  cfg.cluster.fabric.link_bandwidth = 500e6;
  cfg.parallel = 2;
  EXPECT_THROW({ core::Simulation sim(cfg, workload()); }, std::logic_error);
}

