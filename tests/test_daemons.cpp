// Daemon population: periodic activation, accumulation when denied CPU,
// cold-start page-fault inflation, heartbeat deadline tracking / eviction,
// registry calibration, and the GPFS-like I/O service.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "daemons/daemon.hpp"
#include "daemons/io_service.hpp"
#include "daemons/registry.hpp"
#include "kern/kernel.hpp"
#include "sim/choice.hpp"
#include "sim/engine.hpp"

using namespace pasched;
using namespace pasched::sim::literals;
using sim::Duration;
using sim::Engine;
using sim::Time;

namespace {

kern::Tunables quiet() {
  kern::Tunables t;
  t.tick_cost = Duration::ns(1);
  t.context_switch_cost = Duration::ns(1);
  return t;
}

daemons::DaemonSpec simple_spec(const char* name, Duration period,
                                Duration burst) {
  daemons::DaemonSpec s;
  s.name = name;
  s.priority = 50;
  s.period = period;
  s.period_jitter = 0.0;
  s.burst_median = burst;
  s.burst_sigma = 1e-9;  // effectively deterministic
  s.cold_fault_factor = 0.0;
  s.first_due = Duration::ms(5);
  return s;
}

}  // namespace

TEST(Daemon, FiresPeriodicallyOnIdleNode) {
  Engine e;
  kern::Kernel k(e, 0, 2, quiet(), Duration::zero(), 0);
  daemons::Daemon d(k, simple_spec("periodic", 100_ms, 2_ms), sim::Rng(1), 0);
  k.start();
  d.start();
  e.run_until(Time::zero() + 1_s);
  // ~10 activations in a second with a 100 ms period (tick-batched).
  EXPECT_GE(d.stats().activations, 8u);
  EXPECT_LE(d.stats().activations, 11u);
  // CPU consumed ≈ activations * 2 ms.
  const double got = d.stats().total_burst.to_ms();
  EXPECT_NEAR(got, static_cast<double>(d.stats().activations) * 2.0, 1.0);
}

TEST(Daemon, ActivationsBatchToTickBoundaries) {
  Engine e;
  kern::Tunables tun = quiet();
  tun.big_tick = 25;  // 250 ms physical ticks
  tun.cluster_aligned_ticks = true;
  kern::Kernel k(e, 0, 2, tun, Duration::zero(), 0);
  daemons::Daemon d(k, simple_spec("batched", 100_ms, 1_ms), sim::Rng(1), 0);
  k.start();
  d.start();
  e.run_until(Time::zero() + 1_s);
  // 100 ms period but only 4 physical ticks per second: activations coalesce
  // (one outstanding activation per worker, rescheduled on completion).
  EXPECT_LE(d.stats().activations, 5u);
}

TEST(Daemon, AccumulationScalesDeniedWork) {
  // A daemon starved by a higher-priority hog accumulates work: when it
  // finally runs, its burst is larger (capped).
  Engine e;
  kern::Kernel k(e, 0, 1, quiet(), Duration::zero(), 0);
  auto spec = simple_spec("accum", 100_ms, 1_ms);
  spec.accumulates = true;
  spec.accumulation_cap = 3.0;
  spec.priority = 60;
  daemons::Daemon d(k, spec, sim::Rng(1), 0);

  // Hog at better priority occupies the single CPU for 1 s — but only after
  // the daemon has completed a few normal activations (accumulation is
  // measured from the last completion).
  struct Hog final : kern::ThreadClient {
    kern::RunDecision next(Time) override {
      if (done) return kern::RunDecision::block();
      done = true;
      return kern::RunDecision::compute(Duration::sec(1));
    }
    bool done = false;
  } hog;
  kern::ThreadSpec hs;
  hs.name = "hog";
  hs.base_priority = 40;
  hs.fixed_priority = true;
  hs.home_cpu = 0;
  kern::Thread& ht = k.create_thread(hs, hog);
  k.start();
  d.start();
  e.schedule_at(Time::zero() + 300_ms, [&] { k.wake(ht); });
  e.run_until(Time::zero() + 3_s);
  ASSERT_GE(d.stats().activations, 4u);
  // The activation starved behind the hog piled up ~10 periods of work,
  // capped at 3x — so total burst exceeds activations * nominal.
  EXPECT_GT(d.stats().total_burst.to_ms(),
            static_cast<double>(d.stats().activations) * 1.0 + 1.5);
}

TEST(Daemon, ColdStartInflatesBurst) {
  Engine e;
  kern::Kernel k(e, 0, 1, quiet(), Duration::zero(), 0);
  auto spec = simple_spec("cold", 100_ms, 1_ms);
  spec.accumulates = false;
  spec.cold_fault_factor = 0.5;
  spec.cold_threshold = Duration::ms(50);  // every activation is "cold"
  daemons::Daemon cold(k, spec, sim::Rng(1), 0);
  k.start();
  cold.start();
  e.run_until(Time::zero() + 1_s);
  const auto acts = cold.stats().activations;
  ASSERT_GE(acts, 5u);
  // All bursts after the first are inflated by 1.5x.
  const double expect =
      1.0 + static_cast<double>(acts - 1) * 1.5;
  EXPECT_NEAR(cold.stats().total_burst.to_ms(), expect, 1.0);
}

TEST(Daemon, HeartbeatTracksDeadlineMissesAndEviction) {
  Engine e;
  kern::Kernel k(e, 0, 1, quiet(), Duration::zero(), 0);
  auto spec = simple_spec("hatsd", 100_ms, 1_ms);
  spec.priority = 90;  // easily starved
  spec.deadline = Duration::ms(50);
  daemons::Daemon hb(k, spec, sim::Rng(1), 0);
  struct Hog final : kern::ThreadClient {
    kern::RunDecision next(Time) override {
      return kern::RunDecision::compute(Duration::sec(10));
    }
  } hog;
  kern::ThreadSpec hs;
  hs.name = "hog";
  hs.base_priority = 30;
  hs.fixed_priority = true;
  hs.home_cpu = 0;
  kern::Thread& ht = k.create_thread(hs, hog);
  k.start();
  hb.start();
  k.wake(ht);
  e.run_until(Time::zero() + 5_s);
  // The heartbeat never even completes: its pending activation is overdue
  // by seconds, which must register as eviction.
  EXPECT_TRUE(hb.evicted(0));
  EXPECT_GT(hb.worst_pending_delay().count(), Duration::sec(1).count());
}

TEST(Daemon, MultiWorkerSplitsBurst) {
  Engine e;
  kern::Kernel k(e, 0, 4, quiet(), Duration::zero(), 0);
  auto spec = simple_spec("cron", Duration::sec(2), 8_ms);
  spec.workers = 4;
  daemons::Daemon d(k, spec, sim::Rng(1), 0);
  k.start();
  d.start();
  e.run_until(Time::zero() + 1_s);
  // All four workers fire (each counts as an activation), 2 ms each.
  EXPECT_EQ(d.stats().activations, 4u);
  EXPECT_NEAR(d.stats().total_burst.to_ms(), 8.0, 0.5);
  // They ran in parallel on distinct CPUs: all four within ~the same window.
  EXPECT_NEAR(k.accounting().of(kern::ThreadClass::Daemon).to_ms(), 8.0, 0.5);
}

TEST(Registry, StandardSpecsAreSane) {
  const auto specs = daemons::standard_daemon_specs();
  EXPECT_GE(specs.size(), 12u);
  double duty = 0.0;
  for (const auto& s : specs) {
    EXPECT_GT(s.period.count(), 0);
    EXPECT_GT(s.burst_median.count(), 0);
    EXPECT_GE(s.priority, 30);
    EXPECT_LE(s.priority, 60);
    duty += static_cast<double>(s.burst_median.count()) /
            static_cast<double>(s.period.count());
  }
  // Node-total nominal duty (fraction of ONE cpu) lands so that per-CPU load
  // on a 16-way node is inside the paper's 0.2%-1.1% band.
  EXPECT_GT(duty / 16.0, 0.0015);
  EXPECT_LT(duty / 16.0, 0.011);
}

TEST(Registry, InstallsAndRunsOnNode) {
  Engine e;
  kern::Kernel k(e, 0, 16, quiet(), Duration::zero(), 0);
  daemons::RegistryConfig cfg;
  cfg.cron = true;
  cfg.cron_first_due = Duration::sec(1);
  daemons::NodeDaemons nd(k, cfg, sim::Rng(7));
  k.start();
  nd.start();
  e.run_until(Time::zero() + 10_s);
  EXPECT_FALSE(nd.any_evicted());
  EXPECT_NE(nd.cron(), nullptr);
  EXPECT_GE(nd.cron()->stats().activations, 4u);  // 4 workers fired once
  std::uint64_t total_acts = 0;
  for (const auto& d : nd.daemons()) total_acts += d->stats().activations;
  EXPECT_GT(total_acts, 50u);
  EXPECT_GT(nd.nominal_duty(), 0.0);
}

TEST(IoService, ServesRequestsInOrder) {
  Engine e;
  kern::Kernel k(e, 0, 2, quiet(), Duration::zero(), 0);
  daemons::IoServiceConfig cfg;
  cfg.per_request = 100_us;
  cfg.per_byte = Duration::ns(10);
  daemons::IoService io(k, cfg);
  k.start();
  std::vector<int> order;
  std::vector<Time> when;
  io.submit(1000, [&] { order.push_back(1); when.push_back(e.now()); });
  io.submit(1000, [&] { order.push_back(2); when.push_back(e.now()); });
  e.run_until(Time::zero() + 10_ms);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_LT(when[0], when[1]);
  EXPECT_EQ(io.stats().requests, 2u);
  EXPECT_EQ(io.stats().bytes, 2000u);
  // Each request: 100 us + 1000 * 10 ns = 110 us of daemon CPU.
  EXPECT_NEAR(io.stats().busy.to_us(), 220.0, 1.0);
}

TEST(IoService, StarvedByMoreFavoredSpinner) {
  // The ALE3D failure mode in miniature: a fixed-priority spinner at 30
  // (favored task) on each CPU starves mmfsd at 40.
  Engine e;
  kern::Kernel k(e, 0, 1, quiet(), Duration::zero(), 0);
  daemons::IoServiceConfig cfg;
  cfg.priority = 40;
  daemons::IoService io(k, cfg);
  struct Spinner final : kern::ThreadClient {
    kern::RunDecision next(Time) override { return kern::RunDecision::spin(); }
  } sp;
  kern::ThreadSpec ss;
  ss.name = "favored_task";
  ss.base_priority = 30;
  ss.fixed_priority = true;
  ss.home_cpu = 0;
  kern::Thread& st = k.create_thread(ss, sp);
  k.start();
  k.wake(st);
  bool done = false;
  io.submit(100, [&] { done = true; });
  e.run_until(Time::zero() + 2_s);
  EXPECT_FALSE(done) << "mmfsd must not run under a 30-priority spinner";
  // Lower the spinner below mmfsd (the tuned-priority fix): I/O completes.
  k.set_priority(st, 41, true, kern::kExternalActor);
  e.run_until(Time::zero() + 3_s);
  EXPECT_TRUE(done);
}

TEST(IoService, QueueDepthVisible) {
  Engine e;
  kern::Kernel k(e, 0, 1, quiet(), Duration::zero(), 0);
  daemons::IoService io(k, daemons::IoServiceConfig{});
  // Before the engine runs, submissions pile up.
  io.submit(1, [] {});
  io.submit(1, [] {});
  io.submit(1, [] {});
  EXPECT_EQ(io.queue_depth(), 3u);
  k.start();
  e.run_until(Time::zero() + 1_s);
  EXPECT_EQ(io.queue_depth(), 0u);
}

TEST(Daemon, ArrivalPhaseChoicePointSelectsBucket) {
  // first_due < 0 normally draws a random phase; with a ChoiceSource on the
  // engine it becomes one of kArrivalPhaseBuckets explorable phases. With a
  // 1 s period and a 400 ms run, bucket 0 (due immediately) activates and
  // bucket 2 (due at 500 ms) does not.
  struct Scripted final : sim::ChoiceSource {
    std::size_t bucket = 0;
    std::vector<std::string> tags;
    std::size_t choose(std::size_t n, const char* tag) override {
      tags.emplace_back(tag);
      return bucket < n ? bucket : 0;
    }
  };
  auto activations = [](std::size_t bucket, std::vector<std::string>* tags) {
    Engine e;
    Scripted src;
    src.bucket = bucket;
    e.set_choice_source(&src);
    kern::Tunables tun = quiet();
    tun.cluster_aligned_ticks = true;  // keep the tick-phase choice out
    kern::Kernel k(e, 0, 2, tun, Duration::zero(), 0);
    auto spec = simple_spec("phased", 1_s, 1_ms);
    spec.first_due = Duration::ns(-1);
    daemons::Daemon d(k, spec, sim::Rng(1), 0);
    k.start();
    d.start();
    e.run_until(Time::zero() + 400_ms);
    if (tags != nullptr) *tags = src.tags;
    return d.stats().activations;
  };
  std::vector<std::string> tags;
  EXPECT_GE(activations(0, &tags), 1u);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0], "daemon.arrival_phase");
  EXPECT_EQ(activations(2, nullptr), 0u);
}

TEST(Daemon, ExplicitFirstDueIgnoresChoiceSource) {
  struct Counting final : sim::ChoiceSource {
    int calls = 0;
    std::size_t choose(std::size_t, const char*) override {
      ++calls;
      return 0;
    }
  } src;
  Engine e;
  e.set_choice_source(&src);
  kern::Tunables tun = quiet();
  tun.cluster_aligned_ticks = true;
  kern::Kernel k(e, 0, 2, tun, Duration::zero(), 0);
  daemons::Daemon d(k, simple_spec("fixed", 100_ms, 1_ms), sim::Rng(1), 0);
  k.start();
  d.start();
  e.run_until(Time::zero() + 300_ms);
  EXPECT_EQ(src.calls, 0);
  EXPECT_GE(d.stats().activations, 1u);
}
