// The additional application proxies (Sweep3D-class wavefront, implicit CG)
// and the schedtune administrative interface.
#include <gtest/gtest.h>

#include "apps/channels.hpp"
#include "apps/implicit_cg.hpp"
#include "apps/sweep3d_proxy.hpp"
#include "cluster/cluster.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "kern/schedtune.hpp"
#include "mpi/job.hpp"

using namespace pasched;
using sim::Duration;

TEST(SweepGrid, MostSquareFactorization) {
  EXPECT_EQ(apps::sweep_grid(1), (std::pair{1, 1}));
  EXPECT_EQ(apps::sweep_grid(16), (std::pair{4, 4}));
  EXPECT_EQ(apps::sweep_grid(24), (std::pair{4, 6}));
  EXPECT_EQ(apps::sweep_grid(13), (std::pair{1, 13}));  // prime: 1 x N
  EXPECT_EQ(apps::sweep_grid(944), (std::pair{16, 59}));
}

namespace {

core::SimulationConfig sterile_cfg(int ntasks, std::uint64_t seed) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost((ntasks + 15) / 16);
  cfg.cluster.seed = seed;
  cfg.cluster.node.install_daemons = false;
  cfg.job.ntasks = ntasks;
  cfg.job.tasks_per_node = 16;
  cfg.job.mpi.progress_engine = false;
  cfg.job.seed = seed + 1;
  return cfg;
}

}  // namespace

TEST(Sweep3dProxy, CompletesAndPipelines) {
  apps::Sweep3dConfig sw;
  sw.timesteps = 3;
  sw.sweeps_per_step = 2;
  core::Simulation sim(sterile_cfg(16, 61), apps::sweep3d_proxy(sw));
  const auto r = sim.run();
  ASSERT_TRUE(r.completed);
  // One step span per timestep from every task.
  EXPECT_EQ(sim.job().channel(apps::kChanStep).all_us.count(), 3u * 16u);
  // Wavefront pipelining: the far corner waits for the whole front, and
  // consecutive sweeps overlap in the pipeline, so a step takes at least
  // (pipeline depth + sweeps - 1) stages of ~cell_work — far less than
  // sweeps * depth (which would mean no pipelining at all).
  const auto [px, py] = apps::sweep_grid(16);
  const double stage_us = sw.cell_work.to_us();
  const double lower = (px + py - 2 + sw.sweeps_per_step) * stage_us * 0.7;
  const double upper =
      (px + py - 1) * sw.sweeps_per_step * stage_us * 3.0;
  const double mean = sim.job().channel(apps::kChanStep).all_us.mean();
  EXPECT_GT(mean, lower);
  EXPECT_LT(mean, upper);
}

TEST(Sweep3dProxy, ConvergenceCheckOptional) {
  apps::Sweep3dConfig sw;
  sw.timesteps = 2;
  sw.convergence_check = false;
  core::Simulation sim(sterile_cfg(8, 62), apps::sweep3d_proxy(sw));
  ASSERT_TRUE(sim.run().completed);
  EXPECT_EQ(sim.job().channel(apps::kChanAllreduce).all_us.count(), 0u);
}

TEST(ImplicitCg, TwoDotsPerIteration) {
  apps::ImplicitCgConfig cg;
  cg.timesteps = 2;
  cg.iterations_per_step = 5;
  core::Simulation sim(sterile_cfg(16, 63), apps::implicit_cg(cg));
  ASSERT_TRUE(sim.run().completed);
  // 2 steps x 5 iterations x 2 dots x 16 tasks allreduce spans.
  EXPECT_EQ(sim.job().channel(apps::kChanAllreduce).all_us.count(),
            2u * 5u * 2u * 16u);
  EXPECT_EQ(sim.job().channel(apps::kChanStep).all_us.count(), 2u * 16u);
  EXPECT_EQ(sim.job().channel(apps::kChanCompute).all_us.count(),
            2u * 5u * 16u);
}

TEST(Schedtune, AppliesOptions) {
  kern::Tunables t;
  kern::apply_schedtune(t, "-B 25 -S 1 -A 1 -G 1 -R 1 -V 1 -M 1 -t 5000 -i 150");
  EXPECT_EQ(t.big_tick, 25);
  EXPECT_TRUE(t.synchronized_ticks);
  EXPECT_TRUE(t.cluster_aligned_ticks);
  EXPECT_TRUE(t.daemon_global_queue);
  EXPECT_TRUE(t.rt_scheduling);
  EXPECT_TRUE(t.rt_reverse_preemption);
  EXPECT_TRUE(t.rt_multi_ipi);
  EXPECT_EQ(t.timeslice.count(), Duration::us(5000).count());
  EXPECT_EQ(t.ipi_latency.count(), Duration::us(150).count());
}

TEST(Schedtune, RoundTripsThePresets) {
  for (const auto& tun :
       {core::vanilla_kernel(), core::prototype_kernel()}) {
    kern::Tunables rebuilt;  // defaults
    kern::apply_schedtune(rebuilt, kern::render_schedtune(tun));
    EXPECT_EQ(rebuilt.big_tick, tun.big_tick);
    EXPECT_EQ(rebuilt.synchronized_ticks, tun.synchronized_ticks);
    EXPECT_EQ(rebuilt.cluster_aligned_ticks, tun.cluster_aligned_ticks);
    EXPECT_EQ(rebuilt.daemon_global_queue, tun.daemon_global_queue);
    EXPECT_EQ(rebuilt.rt_scheduling, tun.rt_scheduling);
    EXPECT_EQ(rebuilt.rt_reverse_preemption, tun.rt_reverse_preemption);
    EXPECT_EQ(rebuilt.rt_multi_ipi, tun.rt_multi_ipi);
    EXPECT_EQ(rebuilt.timeslice.count(), tun.timeslice.count());
    EXPECT_EQ(rebuilt.ipi_latency.count(), tun.ipi_latency.count());
  }
}

TEST(Schedtune, PartialUpdateLeavesOthersAlone) {
  kern::Tunables t;
  t.rt_scheduling = true;
  kern::apply_schedtune(t, "-B 10");
  EXPECT_EQ(t.big_tick, 10);
  EXPECT_TRUE(t.rt_scheduling);
}

TEST(Schedtune, RejectsBadInput) {
  kern::Tunables t;
  EXPECT_THROW(kern::apply_schedtune(t, "-X 1"), std::logic_error);
  EXPECT_THROW(kern::apply_schedtune(t, "-B"), std::logic_error);
  EXPECT_THROW(kern::apply_schedtune(t, "-B abc"), std::logic_error);
  EXPECT_THROW(kern::apply_schedtune(t, "-B 0"), std::logic_error);
  EXPECT_THROW(kern::apply_schedtune(t, "-S maybe"), std::logic_error);
  EXPECT_THROW(kern::apply_schedtune(t, "garbage"), std::logic_error);
  EXPECT_THROW(kern::apply_schedtune(t, "-t 1"), std::logic_error);
}
