#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace pu = pasched::util;

TEST(Accumulator, Empty) {
  pu::Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  pu::Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  pu::Accumulator a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i < 37 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.min(), all.min(), 0.0);
  EXPECT_NEAR(a.max(), all.max(), 0.0);
}

TEST(Accumulator, MergeWithEmpty) {
  pu::Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  pu::Accumulator c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Summary, PercentilesAndMedian) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);
  pu::Summary s(xs);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-12);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.total(), 5050.0);
}

TEST(Summary, SingleSample) {
  std::vector<double> xs{42.0};
  pu::Summary s(xs);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 42.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys{3, 5, 7, 9, 11};  // y = 2x + 1
  const auto fit = pu::fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i);
    ys.push_back(0.7 * i + 166 + ((i % 7) - 3.0));  // bounded "noise"
  }
  const auto fit = pu::fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 0.7, 0.01);
  EXPECT_NEAR(fit.intercept, 166.0, 2.0);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, RejectsDegenerateInput) {
  std::vector<double> one{1.0};
  EXPECT_THROW((void)pu::fit_line(one, one), std::logic_error);
  std::vector<double> same_x{2.0, 2.0};
  std::vector<double> ys{1.0, 3.0};
  EXPECT_THROW((void)pu::fit_line(same_x, ys), std::logic_error);
}

TEST(Histogram, BinningAndOverflow) {
  pu::Histogram h(0.0, 10.0, 10);
  for (double x : {-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 100.0}) h.add(x);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 4.0);
}

TEST(LogHistogram, GeometricBins) {
  pu::LogHistogram h(1.0, 1024.0, 10);
  h.add(1.5);
  h.add(512.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_NEAR(h.bin_low(0), 1.0, 1e-9);
  EXPECT_NEAR(h.bin_high(9), 1024.0, 1e-6);
}

TEST(Strings, TrimSplitParse) {
  EXPECT_EQ(pu::trim("  a b\t"), "a b");
  EXPECT_EQ(pu::split("a:b::c", ':').size(), 4u);
  EXPECT_EQ(pu::parse_int("42").value(), 42);
  EXPECT_FALSE(pu::parse_int("42x").has_value());
  EXPECT_NEAR(pu::parse_double("3.5").value(), 3.5, 1e-12);
  EXPECT_TRUE(pu::parse_bool("Yes").value());
  EXPECT_FALSE(pu::parse_bool("off").value());
  EXPECT_FALSE(pu::parse_bool("maybe").has_value());
}

TEST(Strings, FormatNs) {
  EXPECT_EQ(pu::format_ns(500), "500 ns");
  EXPECT_EQ(pu::format_ns(350200), "350.20 us");
  EXPECT_EQ(pu::format_ns(1320000000), "1.32 s");
}

TEST(Table, RendersAlignedRows) {
  pu::Table t({"name", "value"});
  t.add_row({"alpha", pu::Table::cell(3.14159, 2)});
  t.add_row({"b", pu::Table::cell(static_cast<long long>(42))});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), std::logic_error);
}
