// Per-rule fire/silent coverage for pasched-srclint over the planted
// fixture corpus (tests/srclint/fixtures mirrors the repo layout, so the
// path-scoped rules see realistic subsystem paths), plus unit coverage of
// the portable frontend: lexing, suppression attachment, and structural
// recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "srclint/model.hpp"
#include "srclint/runner.hpp"
#include "srclint/source.hpp"

using namespace pasched;

namespace {

const char* const kFixtureRoot = PASCHED_REPO_ROOT "/tests/srclint/fixtures";

srclint::SrclintReport scan(const std::string& rel,
                            srclint::RuleStats* stats = nullptr) {
  srclint::SrclintOptions opts;
  opts.root = kFixtureRoot;
  srclint::SrclintReport rep = srclint::run_files(opts, {rel});
  if (stats != nullptr) *stats = rep.stats;
  return rep;
}

std::size_t count_rule(const srclint::SrclintReport& rep,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(rep.findings.begin(), rep.findings.end(),
                    [&](const analysis::Diagnostic& d) {
                      return d.rule == rule;
                    }));
}

struct RuleCase {
  const char* rule;
  const char* fire;
  const char* silent;
  std::size_t expected_fire;
};

const RuleCase kCases[] = {
    {"PSL401", "src/kern/psl401_fire.cxx", "src/kern/psl401_silent.cxx", 3},
    {"PSL402", "src/kern/psl402_fire.cxx", "src/kern/psl402_silent.cxx", 2},
    {"PSL403", "src/sim/psl403_fire.cxx", "src/sim/psl403_silent.cxx", 6},
    {"PSL404", "src/sim/psl404_fire.cxx", "src/sim/psl404_silent.cxx", 3},
    {"PSL405", "src/net/psl405_fire.cxx", "src/net/psl405_silent.cxx", 3},
    {"PSL406", "src/daemons/psl406_fire.cxx", "src/daemons/psl406_silent.cxx",
     3},
};

}  // namespace

TEST(SrclintRules, FireFixturesFireExactlyTheirRule) {
  for (const RuleCase& c : kCases) {
    const srclint::SrclintReport rep = scan(c.fire);
    EXPECT_EQ(count_rule(rep, c.rule), c.expected_fire)
        << c.fire << ":\n" << rep.str();
    // No cross-talk: a planted fixture trips only the rule it plants.
    EXPECT_EQ(rep.findings.size(), c.expected_fire) << c.fire << ":\n"
                                                    << rep.str();
    EXPECT_TRUE(analysis::any_errors(rep.findings));
  }
}

TEST(SrclintRules, SilentFixturesStaySilent) {
  for (const RuleCase& c : kCases) {
    const srclint::SrclintReport rep = scan(c.silent);
    EXPECT_TRUE(rep.findings.empty()) << c.silent << ":\n" << rep.str();
  }
}

TEST(SrclintRules, SuppressionIsHonoredAndCounted) {
  srclint::RuleStats stats;
  const srclint::SrclintReport rep =
      scan("src/sim/psl404_silent.cxx", &stats);
  EXPECT_TRUE(rep.findings.empty());
  EXPECT_EQ(stats.suppressions_honored, 1u);
}

TEST(SrclintRules, OnlyFilterRestrictsRules) {
  srclint::SrclintOptions opts;
  opts.root = kFixtureRoot;
  opts.rules.only = {"PSL402"};
  const srclint::SrclintReport rep =
      srclint::run_files(opts, {"src/kern/psl401_fire.cxx"});
  EXPECT_TRUE(rep.findings.empty());
}

TEST(SrclintLexer, TokensCarryLinesAndKinds) {
  const srclint::SourceFile f = srclint::lex_string(
      "int x = 42;\nconst char* s = \"a \\\" quote\";\n", "src/sim/t.cpp");
  ASSERT_GE(f.tokens.size(), 9u);
  EXPECT_EQ(f.tokens[0].text, "int");
  EXPECT_EQ(f.tokens[0].kind, srclint::Tok::Identifier);
  EXPECT_EQ(f.tokens[3].text, "42");
  EXPECT_EQ(f.tokens[3].kind, srclint::Tok::Number);
  EXPECT_EQ(f.tokens[0].line, 1);
  const auto str = std::find_if(f.tokens.begin(), f.tokens.end(),
                                [](const srclint::Token& t) {
                                  return t.kind == srclint::Tok::String;
                                });
  ASSERT_NE(str, f.tokens.end());
  EXPECT_EQ(str->line, 2);
}

TEST(SrclintLexer, CommentsStringsAndPpLinesAreNeutralized) {
  const srclint::SourceFile f = srclint::lex_string(
      "// throw in comment\n"
      "/* new in block */\n"
      "const char* s = \"throw new std::mutex\";\n"
      "#define HELPER throw\n"
      "int live;\n",
      "src/sim/t.cpp");
  for (const srclint::Token& t : f.tokens) {
    if (t.kind == srclint::Tok::Identifier && !t.pp)
      EXPECT_TRUE(t.text != "throw" && t.text != "new" && t.text != "mutex")
          << t.text;
  }
}

TEST(SrclintLexer, SuppressionCoversOwnAndNextLine) {
  const srclint::SourceFile f = srclint::lex_string(
      "int a;  // srclint-ok(PSL405): same line\n"
      "int b;\n"
      "// srclint-ok(PSL406): next line\n"
      "int c;\n",
      "src/sim/t.cpp");
  EXPECT_TRUE(f.suppressed("PSL405", 1));
  EXPECT_TRUE(f.suppressed("PSL405", 2));  // trailing also covers line+1
  EXPECT_FALSE(f.suppressed("PSL405", 3));
  EXPECT_TRUE(f.suppressed("PSL406", 4));
  EXPECT_FALSE(f.suppressed("PSL406", 5));
}

TEST(SrclintLexer, CommentBlockRidesDownToTheStatement) {
  const srclint::SourceFile f = srclint::lex_string(
      "// srclint-ok(PSL401): a justification long enough\n"
      "// to need several comment lines before the code.\n"
      "int target;\n",
      "src/sim/t.cpp");
  EXPECT_TRUE(f.suppressed("PSL401", 3));
}

TEST(SrclintLexer, ConsecutiveTrailingSuppressionsStayPut) {
  const srclint::SourceFile f = srclint::lex_string(
      "int a;  // srclint-ok(PSL404): anchors to line 1\n"
      "int b;  // srclint-ok(PSL405): anchors to line 2\n",
      "src/sim/t.cpp");
  EXPECT_TRUE(f.suppressed("PSL404", 1));
  EXPECT_TRUE(f.suppressed("PSL405", 2));
  EXPECT_FALSE(f.suppressed("PSL404", 3));
}

TEST(SrclintModel, FindsMarkedFunctionBodies) {
  const srclint::SourceFile f = srclint::lex_string(
      "PASCHED_HOT void fast(int x) { body(x); }\n"
      "PASCHED_HOT int decl_only(int x);\n"
      "void cold() { other(); }\n",
      "src/sim/t.cpp");
  const auto fns = srclint::find_marked_functions(f, "PASCHED_HOT");
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "fast");
}

TEST(SrclintModel, MacroCallArgumentsAreDelimited) {
  const srclint::SourceFile f = srclint::lex_string(
      "void g() { PASCHED_CHECK(f(a, b) && c); }\n", "src/sim/t.cpp");
  const auto calls = srclint::find_macro_calls(f, {"PASCHED_CHECK"});
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(f.tokens[calls[0].args_begin].text, "f");
  EXPECT_EQ(f.tokens[calls[0].args_end].text, ")");
}

TEST(SrclintReport, JsonIsWellFormedEnoughForCi) {
  const srclint::SrclintReport rep = scan("src/kern/psl402_fire.cxx");
  const std::string js = rep.json();
  EXPECT_NE(js.find("\"tool\": \"pasched-srclint\""), std::string::npos);
  EXPECT_NE(js.find("\"rule\": \"PSL402\""), std::string::npos);
  EXPECT_EQ(std::count(js.begin(), js.end(), '{'),
            std::count(js.begin(), js.end(), '}'));
}
