// Whole-tree gates for pasched-alloc: the repository itself must scan
// clean (its hot paths are slab/scratch-disciplined), the planted corpus
// must trip every static rule, and the engine's lifecycle functions must
// actually carry allocation-free claims — the certify half of the
// certify-then-verify pair the runtime ledger closes (PSL606).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "alloc/runner.hpp"

using namespace pasched;

namespace {

alloc::AllocReport scan_tree(const std::string& root) {
  alloc::AllocOptions opts;
  opts.root = root;
  return alloc::run_tree(opts);
}

bool has_claim(const alloc::AllocReport& rep, const std::string& fn) {
  return std::any_of(rep.claims.begin(), rep.claims.end(),
                     [&](const alloc::AllocClaim& c) {
                       return c.function == fn;
                     });
}

}  // namespace

TEST(AllocTree, RepositoryScansClean) {
  const alloc::AllocReport rep = scan_tree(PASCHED_REPO_ROOT);
  EXPECT_TRUE(rep.findings.empty()) << rep.str();
  // Sanity that the scan covered the tree: a discovery regression that
  // found nothing would also "pass" the emptiness check.
  EXPECT_GT(rep.stats.files_in_scope, 100u);
  EXPECT_GT(rep.stats.functions, 500u);
  EXPECT_GE(rep.stats.hot_functions, 20u);
  // HeapItem and TieCandidate carry the arena annotation.
  EXPECT_GE(rep.stats.arena_types, 2u);
}

TEST(AllocTree, EngineLifecycleIsCertifiedAllocationFree) {
  const alloc::AllocReport rep = scan_tree(PASCHED_REPO_ROOT);
  // The claims the fig5 ledger run verifies at runtime: the per-event core.
  for (const char* fn :
       {"Engine::schedule_at", "Engine::cancel", "Engine::fire_next",
        "Engine::fire_tied", "Engine::fire_item", "Engine::acquire_slot",
        "Engine::release_slot", "Kernel::on_tick",
        "ShardedEngine::admit_sorted"})
    EXPECT_TRUE(has_claim(rep, fn)) << "no allocation-free claim for " << fn;
}

TEST(AllocTree, FixtureCorpusNeverLeaksIntoCleanScans) {
  const alloc::AllocReport rep = scan_tree(PASCHED_REPO_ROOT);
  for (const analysis::Diagnostic& d : rep.findings)
    EXPECT_EQ(d.subject.find("alloc/fixtures"), std::string::npos)
        << d.subject;
  for (const alloc::AllocClaim& c : rep.claims)
    EXPECT_EQ(c.file.find("alloc/fixtures"), std::string::npos) << c.file;
}

TEST(AllocTree, PlantedCorpusTripsEveryStaticRule) {
  const alloc::AllocReport rep =
      scan_tree(std::string(PASCHED_REPO_ROOT) + "/tests/alloc/fixtures");
  EXPECT_TRUE(analysis::any_errors(rep.findings));
  std::set<std::string> rules;
  for (const analysis::Diagnostic& d : rep.findings) rules.insert(d.rule);
  // PSL606 is runtime-only (the ledger refutation); the static sweep must
  // trip everything else.
  for (const char* r : {"PSL601", "PSL602", "PSL603", "PSL604"})
    EXPECT_EQ(rules.count(r), 1u) << "corpus never trips " << r;
  EXPECT_EQ(rules.count("PSL606"), 0u);
  // The silent twins and the waiver fixture pin the claim contract.
  EXPECT_EQ(rep.claims.size(), 3u);
  EXPECT_EQ(rep.stats.suppressions_honored, 1u);
}

TEST(AllocTree, ReportCarriesTheSharedJsonHeader) {
  const alloc::AllocReport rep =
      scan_tree(std::string(PASCHED_REPO_ROOT) + "/tests/alloc/fixtures");
  const std::string js = rep.json();
  EXPECT_EQ(js.find("{\n  \"schema\": 1,\n  \"tool\": \"pasched-alloc\","),
            0u);
  EXPECT_NE(js.find("\"claims\""), std::string::npos);
  EXPECT_NE(js.find("\"findings\""), std::string::npos);
}
