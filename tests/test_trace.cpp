// The trace facility: interval reconstruction, windowed recording,
// attribution, and the all-CPUs-green fraction of Figure 1.
#include <gtest/gtest.h>

#include "kern/kernel.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

using namespace pasched;
using namespace pasched::sim::literals;
using sim::Duration;
using sim::Engine;
using sim::Time;

namespace {

struct OneShot final : kern::ThreadClient {
  explicit OneShot(Duration d) : dur(d) {}
  kern::RunDecision next(Time) override {
    if (issued) return kern::RunDecision::block();
    issued = true;
    return kern::RunDecision::compute(dur);
  }
  Duration dur;
  bool issued = false;
};

kern::Tunables quiet() {
  kern::Tunables t;
  t.tick_cost = Duration::ns(1);
  t.context_switch_cost = Duration::ns(1);
  return t;
}

}  // namespace

TEST(Tracer, RecordsDispatchIntervals) {
  Engine e;
  kern::Kernel k(e, 0, 1, quiet(), Duration::zero(), 0);
  trace::Tracer tr(0);
  tr.attach(k);
  OneShot a(3_ms);
  kern::ThreadSpec ts;
  ts.name = "worker";
  ts.cls = kern::ThreadClass::Daemon;
  ts.base_priority = 50;
  ts.fixed_priority = true;
  ts.home_cpu = 0;
  kern::Thread& t = k.create_thread(ts, a);
  k.start();
  tr.enable(e.now());
  k.wake(t);
  e.run_until(Time::zero() + 10_ms);
  tr.disable(e.now());
  ASSERT_EQ(tr.intervals().size(), 1u);
  const auto& iv = tr.intervals()[0];
  EXPECT_EQ(iv.thread->name(), "worker");
  EXPECT_NEAR((iv.end - iv.begin).to_ms(), 3.0, 0.1);
}

TEST(Tracer, WindowedRecordingExcludesDisabledSpans) {
  Engine e;
  kern::Kernel k(e, 0, 1, quiet(), Duration::zero(), 0);
  trace::Tracer tr(0);
  tr.attach(k);
  OneShot a(20_ms);
  kern::ThreadSpec ts;
  ts.name = "long";
  ts.base_priority = 50;
  ts.fixed_priority = true;
  ts.home_cpu = 0;
  kern::Thread& t = k.create_thread(ts, a);
  k.start();
  k.wake(t);
  e.run_until(Time::zero() + 5_ms);
  tr.enable(e.now());  // enable mid-run
  e.run_until(Time::zero() + 15_ms);
  tr.disable(e.now());  // disable before the burst completes
  ASSERT_EQ(tr.intervals().size(), 1u);
  EXPECT_EQ(tr.intervals()[0].begin.count(), Duration::ms(5).count());
  EXPECT_EQ(tr.intervals()[0].end.count(), Duration::ms(15).count());
}

TEST(Tracer, CountsAreAlwaysMaintained) {
  Engine e;
  kern::Kernel k(e, 0, 2, quiet(), Duration::zero(), 0);
  trace::Tracer tr(-1);
  tr.attach(k);
  OneShot a(1_ms);
  kern::ThreadSpec ts;
  ts.name = "t";
  ts.base_priority = 50;
  ts.fixed_priority = true;
  ts.home_cpu = 0;
  kern::Thread& t = k.create_thread(ts, a);
  k.start();
  k.wake(t);
  e.run_until(Time::zero() + 50_ms);
  EXPECT_GE(tr.counts().dispatches, 1u);
  EXPECT_GE(tr.counts().ticks, 8u);  // 2 cpus x ~5 ticks
  EXPECT_TRUE(tr.intervals().empty()) << "recording was never enabled";
}

TEST(TraceAnalysis, AttributionSumsAndSorts) {
  std::vector<trace::Interval> ivs;
  // Build synthetic intervals: need Thread objects; fabricate via a kernel.
  Engine e;
  kern::Kernel k(e, 0, 1, quiet(), Duration::zero(), 0);
  OneShot c1(1_ms), c2(1_ms);
  kern::ThreadSpec s1;
  s1.name = "syncd";
  s1.cls = kern::ThreadClass::Daemon;
  s1.home_cpu = 0;
  kern::ThreadSpec s2 = s1;
  s2.name = "app";
  s2.cls = kern::ThreadClass::AppTask;
  kern::Thread& d = k.create_thread(s1, c1);
  kern::Thread& a = k.create_thread(s2, c2);
  auto T = [](int ms) { return Time::zero() + Duration::ms(ms); };
  ivs.push_back({T(0), T(4), 0, 0, &d});
  ivs.push_back({T(4), T(10), 0, 0, &a});
  ivs.push_back({T(10), T(13), 0, 0, &d});

  const auto all = trace::attribute(ivs, 0, T(0), T(13), false);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "syncd");
  EXPECT_NEAR(all[0].cpu_time.to_ms(), 7.0, 1e-9);
  EXPECT_NEAR(all[1].cpu_time.to_ms(), 6.0, 1e-9);

  const auto no_app = trace::attribute(ivs, 0, T(0), T(13), true);
  ASSERT_EQ(no_app.size(), 1u);
  EXPECT_EQ(no_app[0].name, "syncd");

  // Window clipping: only half of the first daemon interval counts.
  const auto clipped = trace::attribute(ivs, 0, T(2), T(4), true);
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_NEAR(clipped[0].cpu_time.to_ms(), 2.0, 1e-9);
}

TEST(TraceAnalysis, AllCpusAppFraction) {
  Engine e;
  kern::Kernel k(e, 0, 1, quiet(), Duration::zero(), 0);
  OneShot c1(1_ms), c2(1_ms);
  kern::ThreadSpec sa;
  sa.name = "app0";
  sa.cls = kern::ThreadClass::AppTask;
  sa.home_cpu = 0;
  kern::ThreadSpec sb = sa;
  sb.name = "app1";
  kern::Thread& a0 = k.create_thread(sa, c1);
  kern::Thread& a1 = k.create_thread(sb, c2);
  auto T = [](int ms) { return Time::zero() + Duration::ms(ms); };
  std::vector<trace::Interval> ivs;
  // Two CPUs; app runs on cpu0 for [0,10), on cpu1 only for [4,8).
  ivs.push_back({T(0), T(10), 0, 0, &a0});
  ivs.push_back({T(4), T(8), 0, 1, &a1});
  EXPECT_NEAR(trace::all_cpus_app_fraction(ivs, 0, 2, T(0), T(10)), 0.4,
              1e-9);
  // With 1 required CPU the fraction is the cpu0 coverage: 1.0.
  EXPECT_NEAR(trace::all_cpus_app_fraction(ivs, 0, 1, T(0), T(10)), 1.0,
              1e-9);
}

TEST(TraceAnalysis, FractionZeroWithoutAppWork) {
  std::vector<trace::Interval> ivs;
  EXPECT_EQ(trace::all_cpus_app_fraction(ivs, 0, 4, Time::zero(),
                                         Time::zero() + 1_ms),
            0.0);
}
