// Planted PSL504: a shared atomic read-modify-written once per loop
// iteration — the cache line bounces between domains once per event.
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> g_admitted;

void admit_all(int n) {
  for (int i = 0; i < n; ++i) {
    g_admitted.fetch_add(1, std::memory_order_relaxed);
  }
}
