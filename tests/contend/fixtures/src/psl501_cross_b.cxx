// Planted PSL501 (cross-TU, half B): takes x_ and calls half A's territory
// via a local helper that takes y_ — edge CrossPair.x_ -> CrossPair.y_,
// closing the cross-TU cycle with half A.
#include "pair.hpp"

void helper_take_y(CrossPair& p) {
  const std::scoped_lock ly(p.y_);
}

void cross_x_then_y(CrossPair& p) {
  const std::scoped_lock lx(p.x_);
  helper_take_y(p);
}
