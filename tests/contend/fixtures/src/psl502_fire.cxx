// Planted PSL502: a mutex held across a blocking seam — directly (the lock
// rides into arrive_and_wait) and transitively (the lock is held across a
// call whose callee parks).
#include <barrier>
#include <mutex>

struct Window {
  std::mutex wmu_;
  std::barrier<> gate_{2};
};

void stall_direct(Window& w) {
  const std::scoped_lock lk(w.wmu_);
  w.gate_.arrive_and_wait();  // every wmu_ waiter inherits the barrier
}

void park(Window& w) { w.gate_.arrive_and_wait(); }

void stall_via_call(Window& w) {
  const std::scoped_lock lk(w.wmu_);
  park(w);  // callee blocks; the lock is still held
}
