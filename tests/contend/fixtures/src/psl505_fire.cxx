// Planted PSL505: a coarse mutex guarding state whose race::Owned tag
// already proves single-domain ownership — the lock is wider than the
// ownership scope. Also emits the serialization claim "Queue.qmu_" that
// the runtime ledger would verify (PSL506 on refutation).
#include <mutex>

namespace race {
template <class T>
struct Owned {
  T v{};
};
}  // namespace race

struct Queue {
  race::Owned<int> head_;
  std::mutex qmu_;
};
