// Shared mutex declarations for the cross-TU ABBA fixtures: both TUs'
// `x_` / `y_` accesses canonicalize to CrossPair.x_ / CrossPair.y_ through
// this declaration, which is what makes the cycle assemble across files.
#pragma once

#include <mutex>

struct CrossPair {
  std::mutex x_;
  std::mutex y_;
};
