// Silent twin of psl503_fire: the same logical layout with every
// distinct-writer slot isolated on its own cache line.
#include <atomic>
#include <cstdint>
#include <vector>

#include "util/aligned.hpp"

struct ShardedEngine {
  std::vector<util::CacheAligned<std::uint64_t>> seq_;
  alignas(util::kCacheLineBytes) std::atomic<bool> stop_;
};
