// Silent twin of psl501_abba_fire: both paths honor one global acquisition
// order, so the graph gets an edge but never a cycle.
#include <mutex>

struct PairOk {
  std::mutex c_;
  std::mutex d_;
};

void path_one(PairOk& p) {
  const std::scoped_lock lc(p.c_);
  const std::scoped_lock ld(p.d_);  // edge PairOk.c_ -> PairOk.d_
}

void path_two(PairOk& p) {
  const std::scoped_lock lc(p.c_);
  const std::scoped_lock ld(p.d_);  // same order: same edge, no cycle
}
