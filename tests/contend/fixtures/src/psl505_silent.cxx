// Silent twin of psl505_fire: ownership-tagged state and mutex-guarded
// state live in separate classes, so no lock is wider than an ownership
// scope.
#include <mutex>

namespace race {
template <class T>
struct OwnedTag {
  T v{};
};
}  // namespace race

struct OwnedOnly {
  race::OwnedTag<int> head_;
};

struct MutexOnly {
  std::mutex smu_;
  int shared_ = 0;
};
