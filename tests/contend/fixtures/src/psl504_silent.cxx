// Silent twin of psl504_fire: accumulate locally, publish once after the
// loop — one line transfer per drain instead of one per event.
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> g_done;

void finish_all(int n) {
  std::uint64_t local = 0;
  for (int i = 0; i < n; ++i) {
    local += 1;
  }
  g_done.fetch_add(local, std::memory_order_relaxed);
}
