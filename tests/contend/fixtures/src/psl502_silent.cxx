// Silent twin of psl502_fire: the critical section closes before parking,
// so no lock is held at the blocking seam.
#include <barrier>
#include <mutex>

struct WindowOk {
  std::mutex omu_;
  std::barrier<> ogate_{2};
  int pending_ = 0;
};

void drain_then_park(WindowOk& w) {
  int grabbed = 0;
  {
    const std::scoped_lock lk(w.omu_);
    grabbed = w.pending_;
    w.pending_ = 0;
  }
  (void)grabbed;
  w.ogate_.arrive_and_wait();  // parked lock-free
}
