// Planted PSL503: a shard-shared class whose layout false-shares — an
// unpadded per-shard scalar array (adjacent slots, distinct writers) and a
// bare atomic packed beside other fields.
#include <atomic>
#include <cstdint>
#include <vector>

struct Inbox {
  std::vector<std::uint64_t> seq_;  // one slot per shard, 8 per cache line
  std::atomic<bool> stop_;          // shares its line with neighbors
};
