// Planted PSL501 (cross-TU, half A): this TU takes y_ and then calls into
// the sibling TU's helper, which takes x_ — the closure adds the edge
// CrossPair.y_ -> CrossPair.x_. Half B contributes the reverse edge; the
// cycle only exists when both TUs are scanned together.
#include "pair.hpp"

void helper_take_x(CrossPair& p) {
  const std::scoped_lock lx(p.x_);
}

void cross_y_then_x(CrossPair& p) {
  const std::scoped_lock ly(p.y_);
  helper_take_x(p);
}
