// Planted PSL501: the classic ABBA deadlock shape inside one TU — two
// functions taking the same pair of locks in opposite orders.
#include <mutex>

struct Pair {
  std::mutex a_;
  std::mutex b_;
};

void forward_order(Pair& p) {
  const std::scoped_lock la(p.a_);
  const std::scoped_lock lb(p.b_);  // edge Pair.a_ -> Pair.b_
}

void reverse_order(Pair& p) {
  const std::scoped_lock lb(p.b_);
  const std::scoped_lock la(p.a_);  // edge Pair.b_ -> Pair.a_: cycle
}
