// Unit coverage of the pasched-contend lockset extractor: mutex member
// discovery, RAII-guard and manual lock()/unlock() held-set tracking, block
// scoping, blocking-seam and call-site records — the raw material the
// cross-TU LockGraph canonicalizes.
#include <gtest/gtest.h>

#include <string>

#include "contend/locks.hpp"
#include "srclint/source.hpp"

using namespace pasched;

namespace {

contend::FileLocks extract(const std::string& code,
                           const std::string& path = "src/sim/fixture.cpp") {
  const srclint::SourceFile f = srclint::lex_string(code, path);
  return contend::extract_locks(f, contend::ContendConfig{});
}

}  // namespace

TEST(ContendLocks, MutexMembersExtractWithSeamFlag) {
  const contend::FileLocks locks = extract(R"(
struct Inbox {
  std::mutex mu;
  util::SeamMutex smu_;
  int payload = 0;
};
)");
  ASSERT_EQ(locks.mutex_members.size(), 2u);
  EXPECT_EQ(locks.mutex_members[0].cls, "Inbox");
  EXPECT_EQ(locks.mutex_members[0].member, "mu");
  EXPECT_FALSE(locks.mutex_members[0].seam);
  EXPECT_EQ(locks.mutex_members[1].member, "smu_");
  EXPECT_TRUE(locks.mutex_members[1].seam);
}

TEST(ContendLocks, GuardAcquisitionsAccumulateTheHeldSet) {
  const contend::FileLocks locks = extract(R"(
void f(Pair& p) {
  const std::scoped_lock la(p.a_);
  const std::scoped_lock lb(p.b_);
}
)");
  ASSERT_EQ(locks.functions.size(), 1u);
  const contend::FunctionLocks& fn = locks.functions[0];
  ASSERT_EQ(fn.acquisitions.size(), 2u);
  EXPECT_EQ(fn.acquisitions[0].mutex, "a_");
  EXPECT_TRUE(fn.acquisitions[0].held.empty());
  EXPECT_EQ(fn.acquisitions[1].mutex, "b_");
  ASSERT_EQ(fn.acquisitions[1].held.size(), 1u);
  EXPECT_EQ(fn.acquisitions[1].held[0], "a_");
}

TEST(ContendLocks, BlockScopeReleasesItsGuards) {
  const contend::FileLocks locks = extract(R"(
void f(Pair& p) {
  {
    const std::scoped_lock la(p.a_);
  }
  const std::scoped_lock lb(p.b_);
}
)");
  ASSERT_EQ(locks.functions.size(), 1u);
  const contend::FunctionLocks& fn = locks.functions[0];
  ASSERT_EQ(fn.acquisitions.size(), 2u);
  EXPECT_EQ(fn.acquisitions[1].mutex, "b_");
  EXPECT_TRUE(fn.acquisitions[1].held.empty());
}

TEST(ContendLocks, ManualLockUnlockTracksHeld) {
  const contend::FileLocks locks = extract(R"(
void f(Pair& p) {
  p.a_.lock();
  p.b_.lock();
  p.a_.unlock();
  p.c_.lock();
  p.b_.unlock();
  p.c_.unlock();
}
)");
  ASSERT_EQ(locks.functions.size(), 1u);
  const contend::FunctionLocks& fn = locks.functions[0];
  ASSERT_EQ(fn.acquisitions.size(), 3u);
  EXPECT_TRUE(fn.acquisitions[0].held.empty());
  ASSERT_EQ(fn.acquisitions[1].held.size(), 1u);
  EXPECT_EQ(fn.acquisitions[1].held[0], "a_");
  // a_ released before c_ was taken: only b_ rides along.
  ASSERT_EQ(fn.acquisitions[2].held.size(), 1u);
  EXPECT_EQ(fn.acquisitions[2].held[0], "b_");
}

TEST(ContendLocks, MultiMutexGuardHoldsAllArguments) {
  const contend::FileLocks locks = extract(R"(
void f(Pair& p) {
  const std::scoped_lock both(p.a_, p.b_);
  p.c_.lock();
}
)");
  ASSERT_EQ(locks.functions.size(), 1u);
  const contend::FunctionLocks& fn = locks.functions[0];
  ASSERT_EQ(fn.acquisitions.size(), 3u);
  EXPECT_EQ(fn.acquisitions.back().mutex, "c_");
  EXPECT_EQ(fn.acquisitions.back().held.size(), 2u);
}

TEST(ContendLocks, BlockingSeamRecordsTheHeldLocks) {
  const contend::FileLocks locks = extract(R"(
void f(Window& w) {
  const std::scoped_lock lk(w.mu_);
  w.gate_.arrive_and_wait();
}
)");
  ASSERT_EQ(locks.functions.size(), 1u);
  const contend::FunctionLocks& fn = locks.functions[0];
  ASSERT_EQ(fn.blocking.size(), 1u);
  EXPECT_EQ(fn.blocking[0].what, "arrive_and_wait");
  ASSERT_EQ(fn.blocking[0].held.size(), 1u);
  EXPECT_EQ(fn.blocking[0].held[0], "mu_");
}

TEST(ContendLocks, CallSitesRecordTheHeldSetForClosure) {
  const contend::FileLocks locks = extract(R"(
void f(Window& w) {
  const std::scoped_lock lk(w.mu_);
  helper(w);
}
)");
  ASSERT_EQ(locks.functions.size(), 1u);
  const contend::FunctionLocks& fn = locks.functions[0];
  bool saw_helper = false;
  for (const contend::CallSite& c : fn.calls) {
    if (c.callee != "helper") continue;
    saw_helper = true;
    ASSERT_EQ(c.held.size(), 1u);
    EXPECT_EQ(c.held[0], "mu_");
  }
  EXPECT_TRUE(saw_helper);
}

TEST(ContendLocks, ScopeFilterAndOnlyList) {
  const contend::ContendConfig cfg;
  EXPECT_TRUE(cfg.in_scope("src/sim/shard.cpp"));
  EXPECT_FALSE(cfg.in_scope("tests/test_sim_shard.cpp"));
  EXPECT_FALSE(cfg.in_scope("bench/micro_shard.cpp"));

  contend::ContendConfig narrowed;
  narrowed.only = {"PSL503"};
  EXPECT_TRUE(narrowed.rule_enabled("PSL503"));
  EXPECT_FALSE(narrowed.rule_enabled("PSL501"));
  EXPECT_TRUE(cfg.rule_enabled("PSL501"));  // empty only-list enables all
}
