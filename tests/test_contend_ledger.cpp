// Runtime contention-ledger coverage: per-site accounting (acquires,
// contention, wait/hold, domain sets), barrier crossing and wait-share
// arithmetic, the PSL506 certify-then-verify join against PSL505 claims,
// and (under PASCHED_VALIDATE=ON) the SeamMutex/SeamBarrier observer hooks
// end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "contend/ledger.hpp"
#include "race/domain.hpp"
#include "util/seam.hpp"

using namespace pasched;

namespace {

const contend::SiteSummary* find_site(const contend::LedgerReport& rep,
                                      const std::string& name) {
  for (const contend::SiteSummary& s : rep.sites)
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace

TEST(ContendLedger, AccountsAcquiresWaitsAndDomains) {
  const int site =
      util::register_seam_site("LedgerTest.mu", util::SeamKind::Mutex);
  contend::Ledger led;
  {
    race::ScopedDomain d(0);
    led.on_acquire(site, 100, /*contended=*/false);
    led.on_release(site, 50);
  }
  {
    race::ScopedDomain d(1);
    led.on_acquire(site, 300, /*contended=*/true);
    led.on_release(site, 70);
  }
  const contend::LedgerReport rep = led.report();
  const contend::SiteSummary* s = find_site(rep, "LedgerTest.mu");
  ASSERT_NE(s, nullptr) << rep.str();
  EXPECT_EQ(s->acquires, 2u);
  EXPECT_EQ(s->contended, 1u);
  EXPECT_EQ(s->wait_ns, 400u);
  EXPECT_EQ(s->hold_ns, 120u);
  EXPECT_EQ(s->max_wait_ns, 300u);
  EXPECT_EQ(s->domains_observed, 2);
}

TEST(ContendLedger, BarrierCrossingsAndWaitShare) {
  const int mu =
      util::register_seam_site("LedgerTest.share_mu", util::SeamKind::Mutex);
  const int bar = util::register_seam_site("LedgerTest.share_bar",
                                           util::SeamKind::Barrier);
  contend::Ledger led;
  led.on_acquire(mu, 250, true);
  led.on_barrier_wait(bar, 500);
  led.on_barrier_wait(bar, 250);
  led.on_barrier_wait(bar, 0);
  const contend::LedgerReport rep = led.report();
  EXPECT_EQ(rep.barrier_crossings, 3u);
  EXPECT_EQ(rep.total_wait_ns, 1000u);
  EXPECT_NEAR(rep.barrier_wait_share, 0.75, 1e-9);
  // Sites sort by wait, descending: the barrier outwaited the mutex.
  ASSERT_GE(rep.sites.size(), 2u);
  EXPECT_GE(rep.sites[0].wait_ns, rep.sites[1].wait_ns);
  const contend::SiteSummary* b = find_site(rep, "LedgerTest.share_bar");
  ASSERT_NE(b, nullptr);
  EXPECT_NEAR(b->wait_share, 0.75, 1e-9);
}

TEST(ContendLedger, ResetZeroesTheSlots) {
  const int site =
      util::register_seam_site("LedgerTest.reset_mu", util::SeamKind::Mutex);
  contend::Ledger led;
  led.on_acquire(site, 10, false);
  led.reset();
  EXPECT_EQ(find_site(led.report(), "LedgerTest.reset_mu"), nullptr);
}

TEST(ContendLedger, CheckClaimsRefutesMultiDomainSites) {
  const int site =
      util::register_seam_site("LedgerTest.claim_mu", util::SeamKind::Mutex);
  contend::Ledger led;
  {
    race::ScopedDomain d(3);
    led.on_acquire(site, 0, false);
  }
  {
    race::ScopedDomain d(4);
    led.on_acquire(site, 0, false);
  }
  const std::vector<contend::SerializationClaim> claims = {
      {"LedgerTest.claim_mu", "src/sim/hub.cpp", 42}};
  const std::vector<analysis::Diagnostic> diags = led.check_claims(claims);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "PSL506");
  EXPECT_EQ(diags[0].severity, analysis::Severity::Error);
  EXPECT_NE(diags[0].subject.find("src/sim/hub.cpp:42"), std::string::npos);
}

TEST(ContendLedger, CheckClaimsUpholdsSingleDomainAndSkipsUnobserved) {
  const int site =
      util::register_seam_site("LedgerTest.solo_mu", util::SeamKind::Mutex);
  contend::Ledger led;
  {
    race::ScopedDomain d(5);
    led.on_acquire(site, 0, false);
    led.on_acquire(site, 0, false);
  }
  const std::vector<contend::SerializationClaim> claims = {
      {"LedgerTest.solo_mu", "src/sim/a.cpp", 1},
      {"LedgerTest.never_registered_or_touched", "src/sim/b.cpp", 2}};
  EXPECT_TRUE(led.check_claims(claims).empty());
}

#if PASCHED_VALIDATE_ENABLED

TEST(ContendLedger, SeamMutexFeedsTheInstalledObserver) {
  const int site =
      util::register_seam_site("LedgerTest.seam_mu", util::SeamKind::Mutex);
  contend::Ledger led;
  util::install_seam_observer(&led);
  {
    util::SeamMutex mu(site);
    mu.lock();
    mu.unlock();
    ASSERT_TRUE(mu.try_lock());
    mu.unlock();
  }
  util::install_seam_observer(nullptr);
  const contend::LedgerReport rep = led.report();
  const contend::SiteSummary* s = find_site(rep, "LedgerTest.seam_mu");
  ASSERT_NE(s, nullptr) << rep.str();
  EXPECT_EQ(s->acquires, 2u);
  EXPECT_EQ(s->contended, 0u);
}

TEST(ContendLedger, SeamBarrierFeedsTheInstalledObserver) {
  const int site =
      util::register_seam_site("LedgerTest.seam_bar", util::SeamKind::Barrier);
  contend::Ledger led;
  util::install_seam_observer(&led);
  {
    auto noop = []() noexcept {};
    util::SeamBarrier<decltype(noop)> bar(site, 1, noop);
    bar.arrive_and_wait();
    bar.arrive_and_wait();
  }
  util::install_seam_observer(nullptr);
  const contend::LedgerReport rep = led.report();
  const contend::SiteSummary* s = find_site(rep, "LedgerTest.seam_bar");
  ASSERT_NE(s, nullptr) << rep.str();
  EXPECT_EQ(s->acquires, 2u);
  EXPECT_EQ(rep.barrier_crossings, 2u);
}

#endif  // PASCHED_VALIDATE_ENABLED

TEST(ContendLedger, JsonCarriesTheReportFields) {
  const int site =
      util::register_seam_site("LedgerTest.json_mu", util::SeamKind::Mutex);
  contend::Ledger led;
  led.on_acquire(site, 7, false);
  const std::string js = led.report().json(0);
  EXPECT_NE(js.find("\"barrier_crossings\""), std::string::npos);
  EXPECT_NE(js.find("\"barrier_wait_share\""), std::string::npos);
  EXPECT_NE(js.find("\"LedgerTest.json_mu\""), std::string::npos);
}
