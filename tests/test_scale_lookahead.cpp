// Golden-value tests for the per-shard-pair lookahead oracle: the pairwise
// bounds on flat and frame-structured fabrics, the jitter edge cases, the
// degenerate single-node matrix, the hub rows' global floor, the machine-
// readable certificate, and the PSL014 lint precursor.
#include <gtest/gtest.h>

#include <string>

#include "analysis/lint.hpp"
#include "net/fabric.hpp"
#include "scale/lookahead.hpp"
#include "sim/time.hpp"

using namespace pasched;
using sim::Duration;

namespace {

net::FabricConfig flat_fabric() {
  net::FabricConfig f;  // defaults: 20us inter-node, 2% jitter
  return f;
}

net::FabricConfig framed_fabric(int frame_size, Duration extra) {
  net::FabricConfig f;
  f.frame_size = frame_size;
  f.inter_frame_extra = extra;
  return f;
}

}  // namespace

TEST(ScaleLookahead, FlatFabricAllPairsEqualGlobal) {
  // 20us * (1 - 0.02) - 1ns of truncation slack.
  const auto m = scale::build_lookahead_matrix(flat_fabric(), 4);
  EXPECT_EQ(m.nodes, 4);
  EXPECT_EQ(m.shards, 5);
  EXPECT_EQ(m.hub_shard, 4);
  EXPECT_EQ(m.global.count(), 19599);
  EXPECT_TRUE(m.has_pairs());
  for (int a = 0; a < m.shards; ++a)
    for (int b = 0; b < m.shards; ++b)
      EXPECT_EQ(m.at(a, b).count(), a == b ? 0 : 19599)
          << "pair (" << a << "," << b << ")";
  EXPECT_EQ(m.min_pair().count(), 19599);
  EXPECT_EQ(m.median_pair().count(), 19599);
  EXPECT_EQ(m.max_pair().count(), 19599);
}

TEST(ScaleLookahead, FrameTopologyWidensCrossFramePairs) {
  // Frames {0,1} and {2,3}: intra-frame stays 19599ns, cross-frame pays the
  // 10us hop: 30us * 0.98 - 1ns = 29399ns. The global bound must stay the
  // intra-frame minimum — the frame hop can only add latency.
  const auto cfg = framed_fabric(2, Duration::us(10));
  EXPECT_EQ(net::guaranteed_lookahead(cfg).count(), 19599);
  const auto m = scale::build_lookahead_matrix(cfg, 4);
  EXPECT_EQ(m.at(0, 1).count(), 19599);
  EXPECT_EQ(m.at(2, 3).count(), 19599);
  EXPECT_EQ(m.at(0, 2).count(), 29399);
  EXPECT_EQ(m.at(1, 3).count(), 29399);
  EXPECT_EQ(m.at(3, 0).count(), 29399);
  // Hub rows/columns stay at the global floor regardless of frames.
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(m.at(s, m.hub_shard).count(), 19599);
    EXPECT_EQ(m.at(m.hub_shard, s).count(), 19599);
  }
  EXPECT_EQ(m.min_pair().count(), 19599);
  EXPECT_EQ(m.max_pair().count(), 29399);
}

TEST(ScaleLookahead, JitterEdgeCases) {
  net::FabricConfig f;
  f.jitter_frac = 0.0;  // only the truncation slack remains
  EXPECT_EQ(scale::build_lookahead_matrix(f, 2).at(0, 1).count(), 19999);

  f.jitter_frac = 0.5;
  EXPECT_EQ(scale::build_lookahead_matrix(f, 2).at(0, 1).count(), 9999);

  // Pathologically tiny latency: the bound clamps at 1ns, never 0 or
  // negative (a zero bound would let the conservative window collapse).
  f.inter_node_latency = Duration::ns(1);
  f.jitter_frac = 0.9;
  EXPECT_EQ(scale::build_lookahead_matrix(f, 2).at(0, 1).count(), 1);
}

TEST(ScaleLookahead, SingleNodeHasNoPairs) {
  const auto m = scale::build_lookahead_matrix(flat_fabric(), 1);
  EXPECT_EQ(m.shards, 1);
  EXPECT_EQ(m.hub_shard, 0);
  EXPECT_FALSE(m.has_pairs());
  EXPECT_EQ(m.min_pair().count(), 0);
  EXPECT_EQ(m.median_pair().count(), 0);
  // The certificate must still be emittable.
  const std::string cert = m.certificate_json();
  EXPECT_NE(cert.find("\"shards\": 1"), std::string::npos);
}

TEST(ScaleLookahead, CertificateJsonCarriesTheMatrix) {
  const auto m =
      scale::build_lookahead_matrix(framed_fabric(2, Duration::us(10)), 4);
  const std::string cert = m.certificate_json();
  EXPECT_NE(cert.find("\"certificate\""), std::string::npos);
  EXPECT_NE(cert.find("\"nodes\": 4"), std::string::npos);
  EXPECT_NE(cert.find("\"hub_shard\": 4"), std::string::npos);
  EXPECT_NE(cert.find("\"global_lookahead_ns\": 19599"), std::string::npos);
  EXPECT_NE(cert.find("29399"), std::string::npos);
  EXPECT_NE(cert.find("\"bounds_ns\""), std::string::npos);
}

TEST(ScaleLookahead, Psl014FiresOnCollapsedGlobalLookahead) {
  // Cross-frame pairs dominate (median 50us * 0.98 - 1 = 48999ns) while two
  // intra-frame links pin the global bound at 19599ns — a >= 2x collapse.
  analysis::LintConfig lc;
  lc.fabric = framed_fabric(2, Duration::us(30));
  lc.nodes = 4;
  const auto diags = analysis::lint(lc);
  bool found = false;
  for (const auto& d : diags)
    if (d.rule == "PSL014") found = true;
  EXPECT_TRUE(found);
}

TEST(ScaleLookahead, Psl014SilentOnFlatFabric) {
  analysis::LintConfig lc;
  lc.fabric = flat_fabric();
  lc.nodes = 4;
  for (const auto& d : analysis::lint(lc)) EXPECT_NE(d.rule, "PSL014");
}
