// The co-scheduler: window mechanics, priority flips, clock-boundary
// alignment, registration through the control pipe, detach/attach, shutdown,
// and the starvation boundary.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/coscheduler.hpp"
#include "core/presets.hpp"
#include "kern/kernel.hpp"
#include "sim/engine.hpp"

using namespace pasched;
using namespace pasched::sim::literals;
using sim::Duration;
using sim::Engine;
using sim::Time;

namespace {

struct Spinner final : kern::ThreadClient {
  kern::RunDecision next(Time) override { return kern::RunDecision::spin(); }
};

cluster::ClusterConfig small_cluster(int nodes) {
  cluster::ClusterConfig cfg = cluster::presets::frost(nodes);
  cfg.node.ncpus = 4;
  cfg.node.install_daemons = false;
  cfg.seed = 2;
  return cfg;
}

core::CoschedConfig fast_cosched() {
  core::CoschedConfig cc = core::paper_cosched();
  cc.period = Duration::sec(1);
  cc.duty = 0.8;
  return cc;
}

}  // namespace

TEST(CoSched, FlipsTaskPrioritiesOverTheWindow) {
  Engine e;
  cluster::Cluster cl(e, small_cluster(1));
  core::CoschedManager mgr(cl, fast_cosched());
  kern::Kernel& k = cl.node(0).kernel();
  Spinner sp;
  kern::ThreadSpec ts;
  ts.name = "task";
  ts.base_priority = 60;
  ts.home_cpu = 1;
  kern::Thread& t = k.create_thread(ts, sp);
  cl.start();
  k.wake(t);
  mgr.register_task(0, t);
  // Windows are aligned to 1 s boundaries. Inside the favored part the task
  // runs at the fixed favored priority.
  e.run_until(Time::zero() + Duration::ms(1500));
  EXPECT_EQ(t.effective_priority(), 30);
  EXPECT_TRUE(t.fixed_priority());
  // At 80% duty, from 1.8 s the task is unfavored.
  e.run_until(Time::zero() + Duration::ms(1900));
  EXPECT_EQ(t.effective_priority(), 100);
  // Next window re-favors.
  e.run_until(Time::zero() + Duration::ms(2100));
  EXPECT_EQ(t.effective_priority(), 30);
  EXPECT_GE(mgr.total_stats().windows, 2u);
  EXPECT_EQ(mgr.total_stats().registered, 1u);
}

TEST(CoSched, WindowBoundariesAlignAcrossNodesWhenSynced) {
  Engine e;
  cluster::ClusterConfig cfg = small_cluster(3);
  cfg.node.max_clock_offset = Duration::ms(80);
  cluster::Cluster cl(e, cfg);
  core::CoschedConfig cc = fast_cosched();
  cc.sync_clocks = true;
  cc.align_to_period_boundary = true;
  core::CoschedManager mgr(cl, cc);
  EXPECT_LE(mgr.sync_residual().count(), Duration::us(2).count());

  std::vector<kern::Thread*> tasks;
  std::vector<std::unique_ptr<Spinner>> spinners;
  for (int n = 0; n < 3; ++n) {
    spinners.push_back(std::make_unique<Spinner>());
    kern::ThreadSpec ts;
    ts.name = "task";
    ts.base_priority = 60;
    ts.home_cpu = 0;
    kern::Thread& t = cl.node(n).kernel().create_thread(ts, *spinners.back());
    tasks.push_back(&t);
  }
  cl.start();
  for (int n = 0; n < 3; ++n) {
    cl.node(n).kernel().wake(*tasks[n]);
    mgr.register_task(n, *tasks[n]);
  }
  // Probe half-way into a favored phase and inside the unfavored phase:
  // all nodes agree on the phase because boundaries are global multiples.
  e.run_until(Time::zero() + Duration::ms(2300));
  for (auto* t : tasks) EXPECT_EQ(t->effective_priority(), 30);
  e.run_until(Time::zero() + Duration::ms(2900));
  for (auto* t : tasks) EXPECT_EQ(t->effective_priority(), 100);
}

TEST(CoSched, RegistrationGoesThroughThePipeDelay) {
  Engine e;
  cluster::Cluster cl(e, small_cluster(1));
  core::CoschedConfig cc = fast_cosched();
  cc.pipe_delay = Duration::ms(5);
  core::CoschedManager mgr(cl, cc);
  kern::Kernel& k = cl.node(0).kernel();
  Spinner sp, dummy_client;
  kern::ThreadSpec ts;
  ts.name = "task";
  ts.base_priority = 60;
  ts.home_cpu = 0;
  kern::Thread& t = k.create_thread(ts, sp);
  // A first registration at t=0 instantiates the node's co-scheduler, so
  // its windows are running by the time the real task registers.
  kern::ThreadSpec ds = ts;
  ds.name = "dummy";
  kern::Thread& dummy = k.create_thread(ds, dummy_client);
  mgr.register_task(0, dummy);
  cl.start();
  // Let the first window start so registration applies the phase directly.
  e.run_until(Time::zero() + Duration::ms(1200));
  k.wake(t);
  mgr.register_task(0, t);
  e.run_until(Time::zero() + Duration::ms(1202));
  EXPECT_NE(t.effective_priority(), 30) << "pipe delay not yet elapsed";
  e.run_until(Time::zero() + Duration::ms(1210));
  EXPECT_EQ(t.effective_priority(), 30) << "actively co-scheduled on arrival";
}

TEST(CoSched, DetachRestoresNormalPriorityAttachRejoins) {
  Engine e;
  cluster::Cluster cl(e, small_cluster(1));
  core::CoschedManager mgr(cl, fast_cosched());
  kern::Kernel& k = cl.node(0).kernel();
  Spinner sp;
  kern::ThreadSpec ts;
  ts.name = "task";
  ts.base_priority = 60;
  ts.home_cpu = 0;
  kern::Thread& t = k.create_thread(ts, sp);
  cl.start();
  k.wake(t);
  mgr.register_task(0, t);
  e.run_until(Time::zero() + Duration::ms(1500));
  ASSERT_EQ(t.effective_priority(), 30);
  mgr.detach_task(0, t);
  e.run_until(Time::zero() + Duration::ms(1510));
  EXPECT_FALSE(t.fixed_priority());
  EXPECT_EQ(t.base_priority(), kern::kNormalUserBase);
  // While detached, window flips do not touch the task.
  e.run_until(Time::zero() + Duration::ms(1900));  // unfavored phase
  EXPECT_FALSE(t.fixed_priority());
  mgr.attach_task(0, t);
  e.run_until(Time::zero() + Duration::ms(1950));
  EXPECT_EQ(t.effective_priority(), 100) << "attached mid-unfavored-phase";
}

TEST(CoSched, ShutdownStopsFlipping) {
  Engine e;
  cluster::Cluster cl(e, small_cluster(1));
  core::CoschedManager mgr(cl, fast_cosched());
  kern::Kernel& k = cl.node(0).kernel();
  Spinner sp;
  kern::ThreadSpec ts;
  ts.name = "task";
  ts.base_priority = 60;
  ts.home_cpu = 0;
  kern::Thread& t = k.create_thread(ts, sp);
  cl.start();
  k.wake(t);
  mgr.register_task(0, t);
  e.run_until(Time::zero() + Duration::ms(1500));
  const auto windows_before = mgr.total_stats().windows;
  mgr.job_ended();
  e.run_until(Time::zero() + Duration::sec(5));
  EXPECT_EQ(mgr.total_stats().windows, windows_before)
      << "no more windows after shutdown";
}

TEST(CoSched, ConfigValidation) {
  Engine e;
  cluster::Cluster cl(e, small_cluster(1));
  core::CoschedConfig bad = fast_cosched();
  bad.duty = 1.5;
  EXPECT_THROW(core::CoScheduler(cl.node(0).kernel(), bad), std::logic_error);
  bad = fast_cosched();
  bad.favored = 110;  // favored must be better (smaller) than unfavored
  bad.unfavored = 100;
  EXPECT_THROW(core::CoScheduler(cl.node(0).kernel(), bad), std::logic_error);
}

TEST(CoSched, PresetsMatchPaperSettings) {
  const auto cc = core::paper_cosched();
  EXPECT_EQ(cc.favored, 30);
  EXPECT_EQ(cc.unfavored, 100);
  EXPECT_EQ(cc.period.count(), Duration::sec(5).count());
  EXPECT_NEAR(cc.duty, 0.90, 1e-12);
  const auto io = core::io_aware_cosched(40);
  EXPECT_EQ(io.favored, 41);

  const auto proto = core::prototype_kernel();
  EXPECT_EQ(proto.big_tick, 25);
  EXPECT_TRUE(proto.synchronized_ticks);
  EXPECT_TRUE(proto.rt_scheduling);
  EXPECT_TRUE(proto.rt_reverse_preemption);
  EXPECT_TRUE(proto.rt_multi_ipi);
  EXPECT_TRUE(proto.daemon_global_queue);
  const auto vanilla = core::vanilla_kernel();
  EXPECT_EQ(vanilla.big_tick, 1);
  EXPECT_FALSE(vanilla.rt_scheduling);
}

TEST(CoSched, ExtremeDutyStarvesHeartbeat) {
  // §4's warning: give the tasks priority for too long and system daemons
  // starve ("the only way to recover control was to reboot the node").
  Engine e;
  cluster::ClusterConfig cfg = cluster::presets::frost(1);
  cfg.node.install_daemons = true;
  cfg.node.daemons.heartbeat_deadline = Duration::sec(2);
  cfg.node.daemons.io_service = false;
  cfg.seed = 8;
  cluster::Cluster cl(e, cfg);
  core::CoschedConfig cc = core::paper_cosched();
  cc.period = Duration::sec(30);
  cc.duty = 0.999;  // essentially never yields
  core::CoschedManager mgr(cl, cc);
  // Fill every CPU with a registered spinner.
  std::vector<std::unique_ptr<Spinner>> spinners;
  cl.start();
  for (int c = 0; c < cl.node(0).kernel().ncpus(); ++c) {
    spinners.push_back(std::make_unique<Spinner>());
    kern::ThreadSpec ts;
    ts.name = "task" + std::to_string(c);
    ts.base_priority = 60;
    ts.home_cpu = c;
    ts.stealable = false;
    kern::Thread& t = cl.node(0).kernel().create_thread(ts, *spinners.back());
    cl.node(0).kernel().wake(t);
    mgr.register_task(0, t);
  }
  e.run_until(Time::zero() + Duration::sec(60));
  EXPECT_TRUE(cl.any_node_evicted())
      << "a 99.9% duty cycle must starve the membership heartbeat";
}
