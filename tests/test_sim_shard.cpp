// Tests for the partitioned simulation core: Engine's conservative-window
// primitives (run_before, drain, heap compaction after mass cancellation)
// and ShardedEngine's cross-shard posting, window planning, and teardown.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "sim/engine.hpp"
#include "sim/planner.hpp"
#include "sim/shard.hpp"

namespace {

using pasched::sim::Duration;
using pasched::sim::Engine;
using pasched::sim::EventId;
using pasched::sim::PlannerMode;
using pasched::sim::PlannerStats;
using pasched::sim::ShardedEngine;
using pasched::sim::Time;

TEST(EngineWindow, RunBeforeIsExclusiveOfTheEndpoint) {
  Engine e;
  std::vector<std::int64_t> fired;
  e.schedule_at(Time::from_ns(10), [&fired] { fired.push_back(10); });
  e.schedule_at(Time::from_ns(20), [&fired] { fired.push_back(20); });
  e.run_before(Time::from_ns(20));
  EXPECT_EQ(fired, (std::vector<std::int64_t>{10}));
  EXPECT_EQ(e.now(), Time::from_ns(20));  // clock lands on the window edge
  e.run_before(Time::from_ns(21));
  EXPECT_EQ(fired, (std::vector<std::int64_t>{10, 20}));
}

TEST(EngineWindow, RunBeforeAdvancesClockWhenQueueIsEmpty) {
  Engine e;
  e.run_before(Time::from_ns(500));
  EXPECT_EQ(e.now(), Time::from_ns(500));
  EXPECT_EQ(e.events_processed(), 0U);
}

TEST(EngineCancel, MassCancellationCompactsTheHeap) {
  // Regression: cancel() used to leave a stale heap entry per cancelled
  // event, so cancel-heavy components (kernel tick reprogramming) grew the
  // heap without bound. The footprint must stay within a small constant of
  // the live count.
  Engine e;
  std::vector<EventId> ids;
  ids.reserve(1000);
  for (int i = 0; i < 1000; ++i)
    ids.push_back(e.schedule_at(Time::from_ns(1000 + i), [] {}));
  for (const EventId id : ids) e.cancel(id);
  EXPECT_EQ(e.events_pending(), 0U);
  EXPECT_LE(e.queue_footprint(), 64U);
  e.check_consistent();
  e.run();  // nothing left to fire
  EXPECT_EQ(e.events_processed(), 0U);
}

TEST(EngineCancel, CancelRepostOfTheSameSlotAcrossWindowsStaysBounded) {
  // Watchdog pattern regression: a component arms a far-future timeout,
  // then every window cancels and re-arms it. The freed slot is recycled
  // immediately (free-list LIFO), so the same slot index is cancelled and
  // re-posted thousands of times with window boundaries (run_before +
  // next_event_time pruning) interleaved between heap compactions. The
  // footprint must stay bounded and the slot table consistent throughout.
  Engine e;
  EventId timeout;
  int fired = 0;
  for (int w = 0; w < 5000; ++w) {
    e.cancel(timeout);  // no-op on the first pass (invalid id)
    timeout = e.schedule_at(e.now() + Duration::ms(10), [] {
      FAIL() << "a cancelled+re-armed timeout must never fire mid-loop";
    });
    e.schedule_at(e.now() + Duration::ns(500),
                  [&fired] { ++fired; });  // keeps every window non-empty
    e.run_before(e.now() + Duration::us(1));  // one conservative window
    EXPECT_LE(e.queue_footprint(), e.events_pending() + 64U)
        << "stale heap entries accumulating at window " << w;
  }
  EXPECT_EQ(fired, 5000);
  EXPECT_TRUE(e.pending(timeout));  // the final re-arm is still live
  e.check_consistent();
  e.cancel(timeout);
  EXPECT_EQ(e.events_pending(), 0U);
  e.run();
  EXPECT_EQ(fired, 5000);
}

TEST(ShardedCancel, CancelRepostAcrossWindowBoundariesStaysBounded) {
  // The same watchdog pattern inside the partitioned executor: an event
  // chain on shard 0 re-posts itself exactly on the window edge (so every
  // hop lands in a fresh window) and each hop cancels + re-arms a timeout
  // on its own engine. Exercises cancel()'s compaction against the window
  // planner's next_event_time() stale-entry pruning.
  struct Watchdog {
    ShardedEngine& se;
    EventId timeout;
    int remaining;
    void tick() {
      Engine& e = se.engine_of(0);
      e.cancel(timeout);
      timeout = e.schedule_at(e.now() + Duration::ms(100), [] {
        FAIL() << "watchdog timeout must stay cancelled";
      });
      if (--remaining <= 0) return;
      Watchdog* self = this;
      e.schedule_at(e.now() + se.lookahead(), [self] { self->tick(); });
    }
  };
  ShardedEngine se(2, Duration::us(10));
  Watchdog wd{se, {}, 2000};
  Watchdog* wdp = &wd;
  se.engine_of(0).schedule_at(Time::from_ns(100), [wdp] { wdp->tick(); });
  EXPECT_TRUE(se.run_until(Time::from_ns(2000 * 10'000 + 1'000), 2));
  EXPECT_EQ(wd.remaining, 0);
  EXPECT_TRUE(se.engine_of(0).pending(wd.timeout));
  EXPECT_LE(se.engine_of(0).queue_footprint(),
            se.engine_of(0).events_pending() + 64U);
  se.engine_of(0).check_consistent();
  se.drain();  // releases the armed timeout; asserts emptiness under VALIDATE
}

TEST(EngineCancel, DrainReleasesEveryPendingEvent) {
  Engine e;
  for (int i = 0; i < 100; ++i) e.schedule_at(Time::from_ns(10 + i), [] {});
  EXPECT_EQ(e.events_pending(), 100U);
  e.drain();
  EXPECT_EQ(e.events_pending(), 0U);
  EXPECT_EQ(e.queue_footprint(), 0U);
  e.check_consistent();
}

TEST(Sharded, SingleNodeClustersUseOneShard) {
  ShardedEngine se(1, Duration::us(10));
  EXPECT_EQ(se.partitions(), 1);
  EXPECT_EQ(se.hub_shard(), 0);
}

TEST(Sharded, MultiNodeClustersGetAHubShard) {
  ShardedEngine se(4, Duration::us(10));
  EXPECT_EQ(se.partitions(), 5);
  EXPECT_EQ(se.hub_shard(), 4);
  EXPECT_EQ(se.shard_of_node(2), 2);
}

// Satellite regression: an event posted exactly at the window edge
// (t == now + lookahead) must land in the *next* window of the destination
// shard — after every event the destination fires strictly before the edge,
// and in FIFO position among events at the edge itself.
TEST(Sharded, PostAtExactWindowEdgeLandsInTheNextWindow) {
  const Duration kLookahead = Duration::us(10);
  ShardedEngine se(2, kLookahead);
  std::vector<int> order;      // single worker: no concurrent access
  std::vector<std::int64_t> cross_fired_at;
  se.engine_of(1).schedule_at(Time::from_ns(9999),
                              [&order] { order.push_back(1); });
  se.engine_of(1).schedule_at(Time::from_ns(10000),
                              [&order] { order.push_back(2); });
  ShardedEngine* router = &se;
  auto* ord = &order;
  auto* cross = &cross_fired_at;
  se.engine_of(0).schedule_at(Time::zero(), [router, ord, cross] {
    // t == src.now() + lookahead: legal (>=) but right on the edge.
    router->post(0, 1, router->engine_of(0).now() + Duration::us(10),
                 [router, ord, cross] {
                   ord->push_back(3);
                   cross->push_back(router->engine_of(1).now().count());
                 });
    ord->push_back(0);
  });
  EXPECT_TRUE(se.run_until(Time::from_ns(1'000'000), 1));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_EQ(cross_fired_at.size(), 1U);
  EXPECT_EQ(cross_fired_at[0], 10000);  // delivered at its timestamp, not late
  EXPECT_EQ(se.events_processed(), 4U);
}

#if PASCHED_VALIDATE_ENABLED
TEST(Sharded, CrossShardPostBelowLookaheadIsRejected) {
  ShardedEngine se(2, Duration::us(10));
  EXPECT_THROW(se.post(0, 1, Time::from_ns(5), [] {}),
               pasched::check::CheckError);
}
#endif

namespace {
// One token bounces between two shards; every hop is mutex-ordered through
// the destination inbox, so the shared state is race-free by construction.
struct PingPong {
  ShardedEngine& se;
  std::vector<std::int64_t> fired[2];
  int remaining;

  void fire(int shard) {
    fired[shard].push_back(se.engine_of(shard).now().count());
    if (--remaining <= 0) return;
    const int other = 1 - shard;
    PingPong* self = this;
    se.post(shard, other,
            se.engine_of(shard).now() + se.lookahead() + Duration::us(3),
            [self, other] { self->fire(other); });
  }
};

std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>> run_pingpong(
    int workers) {
  ShardedEngine se(2, Duration::us(10));
  PingPong pp{se, {}, 20};
  PingPong* ppp = &pp;
  se.engine_of(0).schedule_at(Time::from_ns(100), [ppp] { ppp->fire(0); });
  EXPECT_TRUE(se.run_until(Time::from_ns(10'000'000), workers));
  return {pp.fired[0], pp.fired[1]};
}
}  // namespace

TEST(Sharded, WorkerCountDoesNotChangeTheSchedule) {
  const auto one = run_pingpong(1);
  const auto two = run_pingpong(2);
  const auto three = run_pingpong(3);  // more workers than busy shards
  EXPECT_FALSE(one.first.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, three);
}

TEST(Sharded, StopAllEndsTheRunEarly) {
  ShardedEngine se(2, Duration::us(10));
  ShardedEngine* router = &se;
  se.engine_of(0).schedule_at(Time::from_ns(100),
                              [router] { router->stop_all(); });
  se.engine_of(1).schedule_at(Time::from_ns(50'000'000), [] {
    FAIL() << "event past the stop point must not fire";
  });
  EXPECT_FALSE(se.run_until(Time::from_ns(100'000'000), 2));
  EXPECT_EQ(se.events_processed(), 1U);
}

TEST(Sharded, WrapupRunsAtABarrierNotMidWindow) {
  ShardedEngine se(2, Duration::us(10));
  ShardedEngine* router = &se;
  bool ran = false;
  bool* ranp = &ran;
  se.engine_of(0).schedule_at(Time::from_ns(100), [router, ranp] {
    router->request_wrapup([ranp] { *ranp = true; });
  });
  EXPECT_TRUE(se.run_until(Time::from_ns(1'000'000), 2));
  EXPECT_TRUE(ran);
}

TEST(Sharded, DrainReleasesPendingEventsAndInboxes) {
  ShardedEngine se(3, Duration::us(10));
  se.engine_of(0).schedule_at(Time::from_ns(10), [] {});
  se.engine_of(1).schedule_at(Time::from_ns(20), [] {});
  se.post(0, 2, Time::from_ns(100'000), [] {});  // parked in shard 2's inbox
  EXPECT_GE(se.events_pending(), 2U);
  se.drain();
  EXPECT_EQ(se.events_pending(), 0U);
  // Destructor drains again (idempotent) — must not throw under validation.
}

TEST(Sharded, QuietWindowsCoalesceIntoTheChain) {
  // Per-pair planning chains several windows per sync round; a window whose
  // shard has nothing due (rings quiet, next event at or past the end) is
  // counted as coalesced — it degenerates to a clock advance. With shard 1
  // completely idle, every one of its windows must coalesce, and the round
  // count must sit well below the chained-window count (that gap is the
  // barrier reduction the per-pair planner exists for).
  ShardedEngine se(2, Duration::us(10));
  ASSERT_EQ(se.planner_mode(), PlannerMode::PerPair);
  struct Chain {
    Engine& e;
    int remaining;
    void tick() {
      if (--remaining <= 0) return;
      Chain* self = this;
      e.schedule_at(e.now() + Duration::us(2), [self] { self->tick(); });
    }
  };
  Chain c{se.engine_of(0), 200};
  Chain* cp = &c;
  se.engine_of(0).schedule_at(Time::from_ns(100), [cp] { cp->tick(); });
  EXPECT_TRUE(se.run_until(Time::from_ns(2'000'000), 1));
  EXPECT_EQ(c.remaining, 0);
  const PlannerStats st = se.planner_stats();
  EXPECT_GT(st.rounds, 0U);
  EXPECT_GT(st.windows, st.rounds);  // chaining actually happened
  EXPECT_GT(st.coalesced, 0U);       // the idle shard's windows were quiet
}

TEST(Sharded, FullRingBackpressureSpillsToOverflowWithoutLoss) {
  // A burst of posts larger than the ring from within a single event: the
  // consumer cannot drain mid-callback, so everything past the capacity
  // must take the overflow lane — and still be delivered, in order, at its
  // stamped time. One worker keeps the fill deterministic.
  ShardedEngine se(2, Duration::us(10));
  se.set_ring_capacity(8);
  std::vector<int> delivered;  // single worker: no concurrent access
  auto* dp = &delivered;
  ShardedEngine* router = &se;
  se.engine_of(0).schedule_at(Time::from_ns(100), [router, dp] {
    const Time t = router->engine_of(0).now() + Duration::us(10);
    for (int i = 0; i < 40; ++i)
      router->post(0, 1, t + Duration::ns(i), [dp, i] { dp->push_back(i); });
  });
  EXPECT_TRUE(se.run_until(Time::from_ns(1'000'000), 1));
  ASSERT_EQ(delivered.size(), 40U);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(delivered[static_cast<std::size_t>(i)], i);
  const PlannerStats st = se.planner_stats();
  EXPECT_EQ(st.ring_posts, 40U);
  EXPECT_EQ(st.ring_overflows, 32U);  // capacity 8, the rest spilled
}

TEST(Sharded, RingCapacityOneStillDeliversEverythingThroughOverflow) {
  // Degenerate capacity (rounds up to 2): nearly every post overflows.
  // The overflow lane is a correctness path, not best-effort — the digest
  // equivalence across planners depends on it delivering a clean prefix.
  ShardedEngine se(2, Duration::us(10));
  se.set_ring_capacity(1);
  int delivered = 0;
  int* dp = &delivered;
  ShardedEngine* router = &se;
  se.engine_of(0).schedule_at(Time::from_ns(100), [router, dp] {
    const Time t = router->engine_of(0).now() + Duration::us(10);
    for (int i = 0; i < 10; ++i)
      router->post(0, 1, t + Duration::ns(i), [dp] { ++*dp; });
  });
  EXPECT_TRUE(se.run_until(Time::from_ns(1'000'000), 1));
  EXPECT_EQ(delivered, 10);
  const PlannerStats st = se.planner_stats();
  EXPECT_EQ(st.ring_posts, 10U);
  EXPECT_EQ(st.ring_overflows, 8U);  // 2 slots held, 8 spilled
}

TEST(Sharded, TeardownWithPendingEventsDoesNotLeak) {
  // Shutdown leak regression: destroying a sharded engine mid-simulation
  // (events still queued, cross-shard posts undelivered) must release every
  // slot. Under PASCHED_VALIDATE the destructor asserts emptiness itself.
  auto se = std::make_unique<ShardedEngine>(4, Duration::us(10));
  for (int s = 0; s < 4; ++s)
    se->engine_of(s).schedule_at(Time::from_ns(100 + s), [] {});
  se->post(0, 1, Time::from_ns(100'000), [] {});
  se.reset();  // no assertion failure, no leak (ASan would flag one)
}

}  // namespace
