// PASCHED_CHECK macro semantics with validation force-enabled for this
// translation unit only. Only check/check.hpp may be included here: its
// behaviour is purely macro-level, so a per-TU override cannot violate the
// one-definition rule the way overriding a class layout would.
#undef PASCHED_VALIDATE_ENABLED
#define PASCHED_VALIDATE_ENABLED 1
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <string>

TEST(CheckMacrosOn, FailingCheckThrowsCheckError) {
  EXPECT_THROW(PASCHED_CHECK(1 + 1 == 3), pasched::check::CheckError);
}

TEST(CheckMacrosOn, PassingCheckIsSilent) {
  EXPECT_NO_THROW(PASCHED_CHECK(2 + 2 == 4));
}

TEST(CheckMacrosOn, MessageAndExpressionAppearInTheError) {
  try {
    PASCHED_CHECK_MSG(false, std::string("the ledger leaked"));
    FAIL() << "PASCHED_CHECK_MSG(false, ...) did not throw";
  } catch (const pasched::check::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos) << what;
    EXPECT_NE(what.find("the ledger leaked"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check_macros.cpp"), std::string::npos) << what;
  }
}

TEST(CheckMacrosOn, ConditionIsEvaluatedExactlyOnce) {
  int evals = 0;
  // srclint-ok(PSL404): this test exists to pin the evaluation count.
  PASCHED_CHECK(++evals > 0);
  EXPECT_EQ(evals, 1);
}

TEST(CheckMacrosOn, MessageIsBuiltOnlyOnFailure) {
  int msg_builds = 0;
  auto msg = [&] {
    ++msg_builds;
    return std::string("expensive");
  };
  PASCHED_CHECK_MSG(true, msg());
  EXPECT_EQ(msg_builds, 0);
  EXPECT_THROW(PASCHED_CHECK_MSG(false, msg()), pasched::check::CheckError);
  EXPECT_EQ(msg_builds, 1);
}
