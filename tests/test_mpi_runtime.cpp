// The message-passing runtime executed on the simulator: job placement,
// p2p semantics, barrier/allreduce timing semantics, spin-vs-block behavior,
// the progress-engine aux threads, distributed I/O, and the scheduler hook
// protocol.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "mpi/collectives.hpp"
#include "mpi/job.hpp"
#include "sim/engine.hpp"

using namespace pasched;
using namespace pasched::sim::literals;
using sim::Duration;
using sim::Engine;
using sim::Time;

namespace {

/// Workload built from a fixed op list (single refill).
class FixedOps final : public mpi::Workload {
 public:
  explicit FixedOps(std::vector<mpi::MicroOp> ops) : ops_(std::move(ops)) {}
  bool refill(const mpi::TaskInfo&, std::vector<mpi::MicroOp>& out) override {
    if (done_ || ops_.empty()) return false;
    done_ = true;
    out = ops_;
    return true;
  }

 private:
  std::vector<mpi::MicroOp> ops_;
  bool done_ = false;
};

cluster::ClusterConfig sterile(int nodes) {
  cluster::ClusterConfig cfg = cluster::presets::frost(nodes);
  cfg.node.install_daemons = false;
  cfg.node.max_clock_offset = Duration::zero();
  cfg.fabric.jitter_frac = 0.0;
  cfg.seed = 1;
  return cfg;
}

struct Rig {
  explicit Rig(int nodes) : cluster(engine, sterile(nodes)) {}
  Engine engine;
  cluster::Cluster cluster;
};

mpi::JobConfig job_cfg(int ntasks, int tpn) {
  mpi::JobConfig jc;
  jc.ntasks = ntasks;
  jc.tasks_per_node = tpn;
  jc.mpi.progress_engine = false;  // most tests want determinism
  return jc;
}

}  // namespace

TEST(MpiJob, PlacementIsBlockwise) {
  Rig rig(3);
  auto factory = [](int, int) {
    return std::make_unique<FixedOps>(std::vector<mpi::MicroOp>{});
  };
  mpi::Job job(rig.cluster, job_cfg(40, 16), factory);
  EXPECT_EQ(job.task(0).node().id(), 0);
  EXPECT_EQ(job.task(15).node().id(), 0);
  EXPECT_EQ(job.task(16).node().id(), 1);
  EXPECT_EQ(job.task(39).node().id(), 2);
  EXPECT_EQ(job.task(17).thread().home_cpu(), 1);
}

TEST(MpiJob, RejectsOverflowingPlacement) {
  Rig rig(2);
  auto factory = [](int, int) {
    return std::make_unique<FixedOps>(std::vector<mpi::MicroOp>{});
  };
  EXPECT_THROW(mpi::Job(rig.cluster, job_cfg(33, 16), factory),
               std::logic_error);
  EXPECT_THROW(mpi::Job(rig.cluster, job_cfg(2, 17), factory),
               std::logic_error);
}

TEST(MpiJob, PingPongAcrossNodes) {
  Rig rig(2);
  auto factory = [](int rank, int) {
    std::vector<mpi::MicroOp> ops;
    if (rank == 0) {
      ops.push_back(mpi::MicroOp::mark_begin(0, 0));
      ops.push_back(mpi::MicroOp::send(1, 7, 8));
      ops.push_back(mpi::MicroOp::recv(1, 8));
      ops.push_back(mpi::MicroOp::mark_end(0, 0));
    } else {
      ops.push_back(mpi::MicroOp::recv(0, 7));
      ops.push_back(mpi::MicroOp::send(0, 8, 8));
    }
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::JobConfig jc = job_cfg(2, 1);
  mpi::Job job(rig.cluster, jc, factory);
  rig.cluster.start();
  job.launch();
  rig.engine.run_until(Time::zero() + 1_s);
  ASSERT_TRUE(job.complete());
  const auto& ch = job.channel(0);
  ASSERT_EQ(ch.recorded_us.size(), 1u);
  // RTT: 2 * (o_send 6us + wire 20us + bytes + o_recv 6us) plus scheduling.
  EXPECT_GT(ch.recorded_us[0], 50.0);
  EXPECT_LT(ch.recorded_us[0], 150.0);
}

TEST(MpiJob, BarrierHoldsEveryoneUntilLastArrives) {
  // Rank 2 computes 5 ms before the barrier; no rank's barrier-exit happens
  // before rank 2 even starts it.
  Rig rig(1);
  auto factory = [](int rank, int size) {
    std::vector<mpi::MicroOp> ops;
    if (rank == 2) ops.push_back(mpi::MicroOp::compute(5_ms));
    ops.push_back(mpi::MicroOp::mark_begin(1, 0));
    mpi::append_barrier(ops, rank, size, 0);
    ops.push_back(mpi::MicroOp::mark_end(1, 0));
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::Job job(rig.cluster, job_cfg(4, 4), factory);
  rig.cluster.start();
  job.launch();
  rig.engine.run_until(Time::zero() + 1_s);
  ASSERT_TRUE(job.complete());
  // Every task's barrier span ends after 5 ms (rank 2's compute).
  EXPECT_GE(job.completion_time().count(), Duration::ms(5).count());
  // Ranks 0,1,3 spent ~5 ms inside the barrier (they spin-wait).
  EXPECT_GT(job.channel(1).all_us.max(), 4500.0);
}

TEST(MpiJob, AllreduceTimeScalesWithLog) {
  auto mean_for = [](int ntasks, int tpn, int nodes) {
    Rig rig(nodes);
    auto factory = [ntasks](int rank, int size) {
      std::vector<mpi::MicroOp> ops;
      mpi::append_barrier(ops, rank, size, 0);
      ops.push_back(mpi::MicroOp::mark_begin(0, 0));
      mpi::append_allreduce(ops, rank, size, 8, mpi::kTagStride,
                            mpi::AllreduceAlg::BinomialTree);
      ops.push_back(mpi::MicroOp::mark_end(0, 0));
      (void)ntasks;
      return std::make_unique<FixedOps>(std::move(ops));
    };
    mpi::Job job(rig.cluster, job_cfg(ntasks, tpn), factory);
    rig.cluster.start();
    job.launch();
    rig.engine.run_until(Time::zero() + 1_s);
    EXPECT_TRUE(job.complete());
    return job.channel(0).all_us.mean();
  };
  const double t64 = mean_for(64, 16, 4);
  const double t256 = mean_for(256, 16, 16);
  // On a sterile cluster the growth must be logarithmic-ish (ratio well
  // under the 4x a linear model would give).
  EXPECT_GT(t256, t64);
  EXPECT_LT(t256 / t64, 2.0);
}

TEST(MpiJob, SpinWaitConsumesCpuBlockingIoDoesNot) {
  // This test needs an I/O service, so build a node *with* daemons.
  Engine engine;
  cluster::ClusterConfig cfg = cluster::presets::frost(1);
  cfg.node.max_clock_offset = Duration::zero();
  cfg.fabric.jitter_frac = 0.0;
  cluster::Cluster cl(engine, cfg);
  auto factory = [](int rank, int) {
    std::vector<mpi::MicroOp> ops;
    if (rank == 0) ops.push_back(mpi::MicroOp::io(1024));
    ops.push_back(mpi::MicroOp::compute(1_ms));
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::JobConfig jc = job_cfg(2, 2);
  jc.io_remote_shards = 0;
  mpi::Job job(cl, jc, factory);
  cl.start();
  job.launch();
  engine.run_until(Time::zero() + 5_s);
  ASSERT_TRUE(job.complete());
  // Task 0 blocked during I/O: its CPU time is ~1 ms of compute only.
  EXPECT_LT(job.task(0).thread().total_cpu().to_ms(), 2.0);
}

TEST(MpiJob, DistributedIoFansOutToPeerDaemons) {
  Engine engine;
  cluster::ClusterConfig cfg = cluster::presets::frost(3);
  cfg.node.max_clock_offset = Duration::zero();
  cluster::Cluster cl(engine, cfg);
  auto factory = [](int rank, int) {
    std::vector<mpi::MicroOp> ops;
    if (rank == 0) ops.push_back(mpi::MicroOp::io(3 * 1024 * 1024));
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::JobConfig jc = job_cfg(3, 1);
  jc.io_remote_shards = 2;
  mpi::Job job(cl, jc, factory);
  cl.start();
  job.launch();
  engine.run_until(Time::zero() + 20_s);
  ASSERT_TRUE(job.complete());
  // All three nodes' mmfsd saw roughly a third of the bytes.
  for (int n = 0; n < 3; ++n) {
    EXPECT_GE(cl.node(n).io_service()->stats().requests, 1u)
        << "node " << n << " should have served a shard";
  }
}

TEST(MpiJob, AuxThreadsPollAndConsumeCpu) {
  Rig rig(1);
  auto factory = [](int, int) {
    std::vector<mpi::MicroOp> ops;
    ops.push_back(mpi::MicroOp::compute(Duration::sec(2)));
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::JobConfig jc = job_cfg(2, 2);
  jc.mpi.progress_engine = true;
  jc.mpi.polling_interval = 200_ms;
  mpi::Job job(rig.cluster, jc, factory);
  rig.cluster.start();
  job.launch();
  rig.engine.run_until(Time::zero() + 5_s);
  ASSERT_TRUE(job.complete());
  EXPECT_GT(job.aux_cpu_total().count(), 0);
  // ~2 s of runtime at a 200 ms polling interval: several polls per task,
  // each 100-200 us.
  EXPECT_GT(job.aux_cpu_total().to_us(), 2 * 5 * 100.0 * 0.5);
}

TEST(MpiJob, PollingIntervalBeyondRuntimeMeansNoAuxCpu) {
  Rig rig(1);
  auto factory = [](int, int) {
    std::vector<mpi::MicroOp> ops;
    ops.push_back(mpi::MicroOp::compute(500_ms));
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::JobConfig jc = job_cfg(2, 2);
  jc.mpi.progress_engine = true;
  jc.mpi.polling_interval = Duration::sec(400);  // MP_POLLING_INTERVAL fix
  mpi::Job job(rig.cluster, jc, factory);
  rig.cluster.start();
  job.launch();
  rig.engine.run_until(Time::zero() + 5_s);
  ASSERT_TRUE(job.complete());
  EXPECT_EQ(job.aux_cpu_total().count(), 0);
}

namespace {

/// Records the control-pipe protocol traffic.
struct RecordingHook final : mpi::SchedulerHook {
  std::vector<std::pair<int, const kern::Thread*>> registered;
  std::vector<const kern::Thread*> detached, attached;
  int ended = 0;
  void register_task(kern::NodeId node, kern::Thread& t) override {
    registered.emplace_back(node, &t);
  }
  void detach_task(kern::NodeId, kern::Thread& t) override {
    detached.push_back(&t);
  }
  void attach_task(kern::NodeId, kern::Thread& t) override {
    attached.push_back(&t);
  }
  void job_ended() override { ++ended; }
};

}  // namespace

TEST(MpiJob, HookProtocolFollowsThePaper) {
  Rig rig(2);
  auto factory = [](int, int) {
    std::vector<mpi::MicroOp> ops;
    ops.push_back(mpi::MicroOp::detach());
    ops.push_back(mpi::MicroOp::compute(1_ms));
    ops.push_back(mpi::MicroOp::attach());
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::Job job(rig.cluster, job_cfg(4, 2), factory);
  RecordingHook hook;
  job.set_hook(&hook);
  rig.cluster.start();
  job.launch();
  // Registration happens at launch (MPI_Init), before any compute.
  EXPECT_EQ(hook.registered.size(), 4u);
  EXPECT_EQ(hook.registered[0].first, 0);
  EXPECT_EQ(hook.registered[3].first, 1);
  rig.engine.run_until(Time::zero() + 1_s);
  ASSERT_TRUE(job.complete());
  EXPECT_EQ(hook.detached.size(), 4u);
  EXPECT_EQ(hook.attached.size(), 4u);
  EXPECT_EQ(hook.ended, 1);
}

TEST(MpiJob, RecordedRankSpansInSequenceOrder) {
  Rig rig(1);
  auto factory = [](int, int) {
    std::vector<mpi::MicroOp> ops;
    for (std::uint64_t i = 0; i < 5; ++i) {
      ops.push_back(mpi::MicroOp::mark_begin(0, i));
      ops.push_back(mpi::MicroOp::compute(Duration::us(100 * (i + 1))));
      ops.push_back(mpi::MicroOp::mark_end(0, i));
    }
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::Job job(rig.cluster, job_cfg(1, 1), factory);
  rig.cluster.start();
  job.launch();
  rig.engine.run_until(Time::zero() + 1_s);
  ASSERT_TRUE(job.complete());
  const auto& ch = job.channel(0);
  ASSERT_EQ(ch.recorded_us.size(), 5u);
  ASSERT_EQ(ch.recorded_begin.size(), 5u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_GT(ch.recorded_us[i], ch.recorded_us[i - 1]);
    EXPECT_GT(ch.recorded_begin[i].count(), ch.recorded_begin[i - 1].count());
  }
  EXPECT_EQ(job.channel(0).all_us.count(), 5u);
}

TEST(MpiJob, SpinBlockReceiverYieldsCpuWhileWaiting) {
  Rig rig(1);
  auto factory = [](int rank, int) {
    std::vector<mpi::MicroOp> ops;
    if (rank == 0) {
      ops.push_back(mpi::MicroOp::recv(1, 9));  // waits ~50 ms for rank 1
    } else {
      ops.push_back(mpi::MicroOp::compute(50_ms));
      ops.push_back(mpi::MicroOp::send(0, 9, 8));
    }
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::JobConfig jc = job_cfg(2, 2);
  jc.mpi.recv_wait = mpi::RecvWait::SpinBlock;
  jc.mpi.spin_threshold = Duration::us(100);
  mpi::Job job(rig.cluster, jc, factory);
  rig.cluster.start();
  job.launch();
  rig.engine.run_until(Time::zero() + 1_s);
  ASSERT_TRUE(job.complete());
  // Rank 0 burned only the spin threshold + o_recv + wakeup, not 50 ms.
  EXPECT_LT(job.task(0).thread().total_cpu().to_us(), 500.0);
  // With pure spinning the same wait costs the whole 50 ms of CPU.
  Rig rig2(1);
  mpi::JobConfig jc2 = job_cfg(2, 2);
  jc2.mpi.recv_wait = mpi::RecvWait::Spin;
  mpi::Job job2(rig2.cluster, jc2, factory);
  rig2.cluster.start();
  job2.launch();
  rig2.engine.run_until(Time::zero() + 1_s);
  ASSERT_TRUE(job2.complete());
  EXPECT_GT(job2.task(0).thread().total_cpu().to_ms(), 40.0);
}

TEST(MpiJob, SpinBlockWithZeroThresholdBlocksImmediately) {
  Rig rig(1);
  auto factory = [](int rank, int) {
    std::vector<mpi::MicroOp> ops;
    if (rank == 0) {
      ops.push_back(mpi::MicroOp::recv(1, 3));
    } else {
      ops.push_back(mpi::MicroOp::compute(10_ms));
      ops.push_back(mpi::MicroOp::send(0, 3, 8));
    }
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::JobConfig jc = job_cfg(2, 2);
  jc.mpi.recv_wait = mpi::RecvWait::SpinBlock;
  jc.mpi.spin_threshold = Duration::zero();
  mpi::Job job(rig.cluster, jc, factory);
  rig.cluster.start();
  job.launch();
  rig.engine.run_until(Time::zero() + 1_s);
  ASSERT_TRUE(job.complete());
  EXPECT_LT(job.task(0).thread().total_cpu().to_us(), 100.0);
}

TEST(MpiJob, SpinBlockCollectivesStillCorrect) {
  Rig rig(2);
  auto factory = [](int rank, int size) {
    std::vector<mpi::MicroOp> ops;
    ops.push_back(mpi::MicroOp::mark_begin(0, 0));
    mpi::append_allreduce(ops, rank, size, 8, 0,
                          mpi::AllreduceAlg::BinomialTree);
    ops.push_back(mpi::MicroOp::mark_end(0, 0));
    mpi::append_barrier(ops, rank, size, mpi::kTagStride);
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::JobConfig jc = job_cfg(32, 16);
  jc.mpi.recv_wait = mpi::RecvWait::SpinBlock;
  jc.mpi.spin_threshold = Duration::us(20);
  mpi::Job job(rig.cluster, jc, factory);
  rig.cluster.start();
  job.launch();
  rig.engine.run_until(Time::zero() + 5_s);
  EXPECT_TRUE(job.complete());
  EXPECT_EQ(job.channel(0).all_us.count(), 32u);
}

TEST(MpiJob, EngineStopsOnCompletionByDefault) {
  Rig rig(1);
  auto factory = [](int, int) {
    std::vector<mpi::MicroOp> ops;
    ops.push_back(mpi::MicroOp::compute(1_ms));
    return std::make_unique<FixedOps>(std::move(ops));
  };
  mpi::Job job(rig.cluster, job_cfg(2, 2), factory);
  rig.cluster.start();
  job.launch();
  rig.engine.run();  // would never return if completion didn't stop it
  EXPECT_TRUE(job.complete());
  EXPECT_GT(job.elapsed().count(), 0);
}
