// The trace analyzer on hand-built pathological traces — the §5.3 mmfsd
// dependency inversion, a spin-wait wait-for cycle, a classic
// delayed-preemption window, vector-clock ordering — plus one end-to-end
// run: a naive tight-window co-scheduling of the synthetic benchmark whose
// longest communication stall must be attributed to a concrete
// priority-inversion edge.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.hpp"
#include "analysis/hb.hpp"
#include "apps/aggregate_trace.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "trace/trace.hpp"

using namespace pasched;
using analysis::AnalysisReport;
using analysis::HbGraph;
using sim::Duration;
using sim::Time;
using trace::Event;
using trace::EventKind;

namespace {

Time at(std::int64_t us) { return Time::zero() + Duration::us(us); }

Event ev(EventKind kind, std::int64_t t_us, kern::NodeId node, int tid,
         kern::Priority prio, kern::CpuId cpu = kern::kNoCpu) {
  Event e;
  e.kind = kind;
  e.t = at(t_us);
  e.node = node;
  e.tid = tid;
  e.priority = prio;
  e.cpu = cpu;
  return e;
}

Event msg(EventKind kind, std::int64_t t_us, kern::NodeId node, int tid,
          kern::Priority prio, int src_rank, int dst_rank,
          std::uint64_t msg_id) {
  Event e = ev(kind, t_us, node, tid, prio);
  e.src_rank = src_rank;
  e.dst_rank = dst_rank;
  e.msg_id = msg_id;
  return e;
}

}  // namespace

TEST(HbGraph, VectorClocksOrderSendsBeforeReceives) {
  std::vector<Event> events;
  events.push_back(ev(EventKind::Dispatch, 0, 0, 1, 30, 0));   // A runs
  events.push_back(ev(EventKind::Dispatch, 5, 0, 2, 30, 1));   // B runs
  events.push_back(msg(EventKind::MsgSend, 10, 0, 1, 30, 0, 1, 77));
  events.push_back(msg(EventKind::MsgRecv, 20, 0, 2, 30, 0, 1, 77));
  const HbGraph g = HbGraph::build(events);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_EQ(g.num_threads(), 2);
  EXPECT_TRUE(g.happens_before(0, 2));   // program order on A
  EXPECT_TRUE(g.happens_before(2, 3));   // send -> recv
  EXPECT_TRUE(g.happens_before(0, 3));   // transitively
  EXPECT_FALSE(g.happens_before(3, 2));
  EXPECT_FALSE(g.happens_before(1, 2));  // B's dispatch vs A's send
  EXPECT_TRUE(g.concurrent(0, 1));
  EXPECT_FALSE(g.concurrent(0, 0));
}

TEST(HbGraph, UnmatchedReceiveGetsNoCrossEdge) {
  std::vector<Event> events;
  events.push_back(ev(EventKind::Dispatch, 0, 0, 1, 30, 0));
  // The send fell outside the slice: recv of msg 9 has nothing to join.
  events.push_back(msg(EventKind::MsgRecv, 10, 0, 2, 30, 0, 1, 9));
  const HbGraph g = HbGraph::build(events);
  EXPECT_TRUE(g.concurrent(0, 1));
}

TEST(Analyzer, FindsDelayedPreemptionInversionWindow) {
  // One CPU: a worse-priority holder keeps running for 4 ms after a
  // better-priority waiter becomes Ready — the tick-granular window.
  std::vector<Event> events;
  events.push_back(ev(EventKind::Dispatch, 0, 0, /*tid=*/2, /*prio=*/100, 0));
  events.push_back(ev(EventKind::Ready, 1000, 0, /*tid=*/1, /*prio=*/30));
  events.push_back(ev(EventKind::Ready, 5000, 0, 2, 100));  // enqueue first,
  events.push_back(ev(EventKind::Preempt, 5000, 0, 2, 100, 0));  // then off
  events.push_back(ev(EventKind::Dispatch, 5000, 0, 1, 30, 0));
  events.push_back(ev(EventKind::Exit, 6000, 0, 1, 30, 0));

  const AnalysisReport rep = analysis::analyze(events);
  ASSERT_FALSE(rep.inversions.empty());
  const analysis::InversionWindow& iv = rep.inversions.front();
  EXPECT_EQ(iv.node, 0);
  EXPECT_EQ(iv.cpu, 0);
  EXPECT_EQ(iv.waiter_tid, 1);
  EXPECT_EQ(iv.waiter_priority, 30);
  EXPECT_EQ(iv.holder_tid, 2);
  EXPECT_EQ(iv.holder_priority, 100);
  EXPECT_EQ(iv.span(), Duration::us(4000));
  EXPECT_NE(iv.str().find("node0/tid1"), std::string::npos);
}

TEST(Analyzer, MinInversionFiltersShortWindows) {
  std::vector<Event> events;
  events.push_back(ev(EventKind::Dispatch, 0, 0, 2, 100, 0));
  events.push_back(ev(EventKind::Ready, 1000, 0, 1, 30));
  events.push_back(ev(EventKind::Dispatch, 1200, 0, 1, 30, 0));
  analysis::AnalyzerOptions opts;
  opts.min_inversion = Duration::us(500);
  EXPECT_TRUE(analysis::analyze(events, opts).inversions.empty());
  opts.min_inversion = Duration::us(100);
  EXPECT_FALSE(analysis::analyze(events, opts).inversions.empty());
}

TEST(Analyzer, ReproducesSection53MmfsdStarvation) {
  // The ALE3D pathology in miniature: a favored (prio 30) task spins on the
  // only CPU waiting for data that mmfsd (prio 40, pseudo-rank 9) must
  // produce — but mmfsd sits Ready the whole time because 40 cannot preempt
  // 30. The wait only drains when the favored window ends.
  const int task_tid = 1, mmfsd_tid = 5;
  std::vector<Event> events;
  events.push_back(ev(EventKind::Dispatch, 0, 0, task_tid, 30, 0));
  events.push_back(ev(EventKind::Ready, 0, 0, mmfsd_tid, 40));
  events.push_back(msg(EventKind::MsgRecvWait, 1000, 0, task_tid, 30,
                       /*src=*/9, /*dst=*/0, /*msg=*/99));
  // Window flip at t=10ms: the task is preempted, mmfsd finally runs and
  // delivers, the task's receive completes.
  events.push_back(ev(EventKind::Ready, 10000, 0, task_tid, 100));
  events.push_back(ev(EventKind::Preempt, 10000, 0, task_tid, 100, 0));
  events.push_back(ev(EventKind::Dispatch, 10000, 0, mmfsd_tid, 40, 0));
  events.push_back(msg(EventKind::MsgSend, 10500, 0, mmfsd_tid, 40, 9, 0, 99));
  events.push_back(ev(EventKind::Block, 10600, 0, mmfsd_tid, 40, 0));
  events.push_back(ev(EventKind::Dispatch, 10600, 0, task_tid, 100, 0));
  events.push_back(msg(EventKind::MsgRecv, 11000, 0, task_tid, 100, 9, 0, 99));

  const AnalysisReport rep = analysis::analyze(events);
  ASSERT_FALSE(rep.stalled.empty());
  const analysis::StalledSender& s = rep.stalled.front();
  EXPECT_EQ(s.waiter_rank, 0);
  EXPECT_EQ(s.expected_src, 9);
  EXPECT_EQ(s.sender_tid, mmfsd_tid);
  EXPECT_EQ(s.sender_priority, 40);
  // mmfsd sat Ready from the wait's start (1 ms) to the flip (10 ms).
  EXPECT_EQ(s.sender_ready, Duration::us(9000));
  // The starving CPU holder is the favored spinner itself.
  ASSERT_FALSE(s.holders.empty());
  EXPECT_NE(s.holders.front().find("prio 30"), std::string::npos);
}

TEST(Analyzer, FindsSpinWaitCycleAndVerifiesConcurrency) {
  // Two ranks each wait for a message the other never sent (§2's cascading
  // spin-wait, fully closed): a genuine wait-for cycle.
  std::vector<Event> events;
  events.push_back(msg(EventKind::MsgRecvWait, 1000, 0, 1, 30, 1, 0, 11));
  events.push_back(msg(EventKind::MsgRecvWait, 2000, 1, 2, 30, 0, 1, 22));
  const AnalysisReport rep = analysis::analyze(events);
  ASSERT_EQ(rep.cycles.size(), 1u);
  EXPECT_EQ(rep.cycles[0].ranks, (std::vector<int>{0, 1}));
  EXPECT_TRUE(rep.cycles[0].hb_concurrent);
  const auto diags = rep.diagnostics();
  EXPECT_TRUE(analysis::any_errors(diags));
  EXPECT_TRUE(std::any_of(diags.begin(), diags.end(),
                          [](const analysis::Diagnostic& d) {
                            return d.rule == "PSL103";
                          }));
}

TEST(Analyzer, SendrecvExchangeIsNotACycle) {
  // Both ranks post their sends before waiting — a plain sendrecv exchange.
  // The mutual wait drains fine and must NOT be reported as a cycle.
  std::vector<Event> events;
  events.push_back(msg(EventKind::MsgSend, 1000, 0, 1, 30, 0, 1, 100));
  events.push_back(msg(EventKind::MsgSend, 2000, 1, 2, 30, 1, 0, 200));
  events.push_back(msg(EventKind::MsgRecvWait, 3000, 0, 1, 30, 1, 0, 200));
  events.push_back(msg(EventKind::MsgRecvWait, 4000, 1, 2, 30, 0, 1, 100));
  events.push_back(msg(EventKind::MsgRecv, 5000, 0, 1, 30, 1, 0, 200));
  events.push_back(msg(EventKind::MsgRecv, 6000, 1, 2, 30, 0, 1, 100));
  EXPECT_TRUE(analysis::analyze(events).cycles.empty());
}

TEST(Analyzer, EmptyTraceIsClean) {
  const AnalysisReport rep = analysis::analyze({});
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.diagnostics().empty());
}

// The acceptance scenario: a stock kernel under a deliberately tight naive
// co-scheduling window running the paper's synthetic benchmark. The event
// stream must contain Fig-4-style outlier windows, and the analyzer must
// attribute them to concrete priority-inversion edges.
TEST(AnalyzerIntegration, AttributesOutlierWindowsInNaiveCoschedRun) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(2);
  cfg.cluster.seed = 7;
  cfg.cluster.node.ncpus = 4;
  cfg.job.ntasks = 8;
  cfg.job.tasks_per_node = 4;  // fill every CPU: daemons must contend
  cfg.job.seed = 7;
  cfg.use_coscheduler = true;
  cfg.cosched = core::paper_cosched();
  cfg.cosched.period = Duration::ms(100);  // several flips in a short run
  cfg.cosched.duty = 0.50;

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = 300;
  at.warmup = Duration::ms(150);
  core::Simulation sim(cfg, apps::aggregate_trace(at));

  trace::EventLog elog;
  trace::Tracer tracer(/*node_filter=*/-1);
  for (int n = 0; n < sim.cluster().size(); ++n)
    tracer.attach(sim.cluster().node(n).kernel());
  tracer.set_event_log(&elog);
  tracer.enable(sim.engine().now());
  sim.job().set_event_log(&elog);

  const core::SimulationResult result = sim.run();
  ASSERT_TRUE(result.completed);
  ASSERT_GT(elog.size(), 0u);

  analysis::AnalyzerOptions opts;
  opts.min_inversion = Duration::us(100);
  const AnalysisReport rep = analysis::analyze(elog.events(), opts);

  // At least one concrete inversion edge: a better-priority thread sat
  // Ready behind a named worse-priority CPU holder for a macroscopic span.
  ASSERT_FALSE(rep.inversions.empty());
  const analysis::InversionWindow& widest = rep.inversions.front();
  EXPECT_GT(widest.holder_priority, widest.waiter_priority);
  EXPECT_GE(widest.span(), Duration::ms(1));
  EXPECT_FALSE(widest.holder.empty());
  EXPECT_FALSE(widest.waiter.empty());
  EXPECT_GE(widest.start, Time::zero());
  EXPECT_GT(widest.end, widest.start);

  // And the §5.3 signature: some receive-wait outlier is attributed to its
  // expected sender sitting Ready behind named CPU holders.
  ASSERT_FALSE(rep.stalled.empty());
  const analysis::StalledSender& worst = rep.stalled.front();
  EXPECT_GT(worst.sender_ready, Duration::zero());
  EXPECT_FALSE(worst.holders.empty());
  EXPECT_GE(worst.wait_end - worst.wait_start, worst.sender_ready);

  // A healthy Allreduce workload must not produce deadlock cycles.
  EXPECT_TRUE(rep.cycles.empty());

  // The report renders every finding with its rule ID.
  const std::string text = rep.str();
  EXPECT_NE(text.find("PSL101"), std::string::npos);
  EXPECT_NE(text.find("PSL102"), std::string::npos);
}
