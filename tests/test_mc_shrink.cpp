#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mc/configs.hpp"
#include "mc/explorer.hpp"
#include "mc/schedule.hpp"

using namespace pasched;
using namespace pasched::mc;

TEST(Schedule, SerializeParseRoundTrip) {
  Schedule s;
  s.push_back({"engine.tiebreak", 3, 1});
  s.push_back({"daemon.arrival_phase", 4, 0});
  s.push_back({"kern.tick_phase", 4, 3});
  const Schedule back = Schedule::parse(s.serialize());
  EXPECT_EQ(back, s);
  EXPECT_EQ(Schedule::parse(s.str()), s);
  EXPECT_EQ(s.deviations(), 2u);
  EXPECT_EQ(s.prefix(1).size(), 1u);
  EXPECT_EQ(s.prefix(1).at(0), s.at(0));
}

TEST(Schedule, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Schedule::parse("tag-only"), std::logic_error);
  EXPECT_THROW((void)Schedule::parse("t 3"), std::logic_error);
  EXPECT_THROW((void)Schedule::parse("t 3 3"), std::logic_error);  // pick>=arity
  EXPECT_THROW((void)Schedule::parse("t 0 0"), std::logic_error);  // arity 0
  EXPECT_THROW((void)Schedule::parse("t 2 1 junk"), std::logic_error);
  EXPECT_THROW((void)Schedule::parse("t x y"), std::logic_error);
  // Comments and blank lines are fine.
  const Schedule s = Schedule::parse("# header\n\nengine.tiebreak 2 1\n");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.at(0), (Choice{"engine.tiebreak", 2, 1}));
}

TEST(GuidedSourceTest, ReplaysPrefixThenDefaults) {
  Schedule prefix;
  prefix.push_back({"x", 4, 2});
  GuidedSource src(prefix);
  EXPECT_EQ(src.choose(4, "x"), 2u);
  EXPECT_EQ(src.choose(5, "y"), 0u);  // past the prefix: default
  EXPECT_FALSE(src.clamped());
  ASSERT_EQ(src.trace().size(), 2u);
  EXPECT_EQ(src.trace().at(0), (Choice{"x", 4, 2}));
  EXPECT_EQ(src.trace().at(1), (Choice{"y", 5, 0}));
}

TEST(GuidedSourceTest, ClampsStalePickToLiveArity) {
  Schedule prefix;
  prefix.push_back({"x", 4, 3});
  GuidedSource src(prefix);
  EXPECT_EQ(src.choose(2, "x"), 1u);  // clamped to live arity - 1
  EXPECT_TRUE(src.clamped());
}

TEST(Shrink, LostWakeupShrunkTraceStillReproduces) {
  ExploreOptions o;
  Explorer ex(find_model("lost-wakeup"), o);
  const ExploreResult res = ex.explore();
  ASSERT_TRUE(res.violation.has_value());
  ASSERT_EQ(res.violation->oracle, Oracle::Completion);

  const Schedule shrunk = ex.shrink(res.violation->schedule,
                                    res.violation->oracle);
  EXPECT_LE(shrunk.size(), res.violation->schedule.size());
  EXPECT_LE(shrunk.deviations(), res.violation->schedule.deviations());
  // The planted TOCTOU needs exactly one flipped tie-break; shrinking must
  // reduce the counterexample to that single deviation.
  EXPECT_EQ(shrunk.deviations(), 1u);
  // Trailing default choices are trimmed: the last kept choice deviates.
  ASSERT_FALSE(shrunk.empty());
  EXPECT_NE(shrunk.at(shrunk.size() - 1).pick, 0u);

  const RunRecord replay = ex.run_schedule(shrunk);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->oracle, Oracle::Completion);
}

TEST(Shrink, StarvationShrunkTraceStillReproduces) {
  ExploreOptions o;
  Explorer ex(find_model("starvation"), o);
  const ExploreResult res = ex.explore();
  ASSERT_TRUE(res.violation.has_value());
  ASSERT_EQ(res.violation->oracle, Oracle::Liveness);

  const Schedule shrunk = ex.shrink(res.violation->schedule,
                                    res.violation->oracle);
  const RunRecord replay = ex.run_schedule(shrunk);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->oracle, Oracle::Liveness);
  EXPECT_LE(shrunk.size(), res.violation->schedule.size());
  // The whole counterexample boils down to the daemon's arrival phase.
  EXPECT_EQ(shrunk.deviations(), 1u);
  bool phase = false;
  for (const Choice& c : shrunk.choices())
    if (c.tag == "daemon.arrival_phase" && c.pick != 0) phase = true;
  EXPECT_TRUE(phase);
}

TEST(Shrink, DivergenceIsReturnedUnchanged) {
  ExploreOptions o;
  Explorer ex(find_model("starvation"), o);
  Schedule s;
  s.push_back({"engine.tiebreak", 2, 1});
  EXPECT_EQ(ex.shrink(s, Oracle::Divergence), s);
}

TEST(Shrink, CleanScheduleShrinksAwayEntirely) {
  // Shrinking a schedule that does NOT reproduce any violation converges to
  // itself (no smaller schedule reproduces either) — exercise the guard.
  ExploreOptions o;
  Explorer ex(find_model("lost-wakeup"), o);
  Schedule s;  // empty = clean default run
  const RunRecord r = ex.run_schedule(s);
  ASSERT_FALSE(r.violation.has_value());
  EXPECT_EQ(ex.shrink(s, Oracle::Completion), s);
}
