// pasched-lint: the offline analysis front-end. Two engines behind one exit
// status:
//
//   * the config linter (analysis/lint.hpp) — checks kernel tunables,
//     co-scheduler parameters, daemon registry, MPI runtime config, and
//     /etc/poe.priority records against the paper's misconfiguration
//     pathologies (rules PSL001–PSL013);
//   * the trace analyzer (analysis/analyzer.hpp) — runs a short
//     aggregate_trace simulation, collects the rich event stream, and mines
//     it for priority-inversion windows, stalled-sender cascades, and
//     wait-for cycles (rules PSL101–PSL103).
//
//   ./pasched-lint                                  # lint every shipped preset
//   ./pasched-lint --list-rules
//   ./pasched-lint --kernel=prototype --cosched=paper
//   ./pasched-lint --scenario=ale3d-naive           # §5.3 misconfiguration
//   ./pasched-lint --scenario=ale3d-tuned           # the favored=41 fix
//   ./pasched-lint --admin=etc/poe.priority
//   ./pasched-lint --trace-run [--trace-calls=N] [--schedule=FILE]
//   ./pasched-lint --schedtune --kernel=prototype
//
// Exit status: 0 = no ERROR findings, 1 = at least one ERROR, 64 = bad usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/diagnostic.hpp"
#include "analysis/lint.hpp"
#include "apps/aggregate_trace.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "kern/schedtune.hpp"
#include "mc/schedule.hpp"
#include "sim/choice.hpp"
#include "trace/trace.hpp"
#include "util/flags.hpp"

using namespace pasched;

namespace {

/// Findings accumulated across every linted label for --json=FILE; the
/// label is folded into the subject so one flat array stays attributable.
std::vector<analysis::Diagnostic> g_collected;
std::string g_json_path;

void collect(const std::string& label,
             const std::vector<analysis::Diagnostic>& diags) {
  for (analysis::Diagnostic d : diags) {
    d.subject = label + ": " + d.subject;
    g_collected.push_back(std::move(d));
  }
}

/// Writes the machine-readable report (shared schema/tool header) on the
/// way out of every lint mode. Usage errors (64) skip the write.
int finish(int rc) {
  if (g_json_path.empty() || rc == 64) return rc;
  std::ofstream out(g_json_path);
  if (!out) {
    std::cerr << "pasched-lint: cannot write " << g_json_path << "\n";
    return rc == 0 ? 64 : rc;
  }
  out << "{\n  " << analysis::json_report_header("pasched-lint") << "\n"
      << "  \"pass\": " << (rc == 0 ? "true" : "false") << ",\n"
      << "  \"findings\": " << analysis::diagnostics_json(g_collected, 2)
      << "\n}\n";
  std::cout << "json report written to " << g_json_path << "\n";
  return rc;
}

int report(const std::string& label,
           const std::vector<analysis::Diagnostic>& diags) {
  collect(label, diags);
  if (diags.empty()) {
    std::cout << label << ": clean\n";
    return 0;
  }
  std::cout << label << ":\n";
  for (const analysis::Diagnostic& d : diags) std::cout << "  " << d.str() << "\n";
  return analysis::any_errors(diags) ? 1 : 0;
}

const kern::Tunables* find_kernel(
    const std::vector<core::NamedKernelPreset>& presets,
    const std::string& name) {
  for (const core::NamedKernelPreset& p : presets)
    if (p.name == name) return &p.tunables;
  return nullptr;
}

const core::CoschedConfig* find_cosched(
    const std::vector<core::NamedCoschedPreset>& presets,
    const std::string& name) {
  for (const core::NamedCoschedPreset& p : presets)
    if (p.name == name) return &p.config;
  return nullptr;
}

/// Lints every shipped kernel preset alone and crossed with every shipped
/// co-scheduler preset. All of these must be clean — CI runs this mode.
int lint_all_presets(const analysis::RuleSelection& rules) {
  int rc = 0;
  const auto kernels = core::named_kernel_presets();
  const auto cloths = core::named_cosched_presets();
  for (const core::NamedKernelPreset& k : kernels) {
    analysis::LintConfig cfg;
    cfg.tunables = k.tunables;
    rc |= report("preset " + k.name, analysis::lint(cfg, rules));
    for (const core::NamedCoschedPreset& c : cloths) {
      cfg.cosched = c.config;
      rc |= report("preset " + k.name + "+" + c.name,
                   analysis::lint(cfg, rules));
    }
    cfg.cosched.reset();
  }
  return rc;
}

/// The §5.3 ALE3D scenarios: an I/O-dependent workload under the naive
/// benchmark co-scheduling config (favored 30 vs mmfsd 40 — the published
/// mistake) and under the tuned favored-41 fix.
analysis::LintConfig ale3d_scenario(bool tuned) {
  analysis::LintConfig cfg;
  cfg.tunables = core::prototype_kernel();
  cfg.workload_uses_io = true;
  cfg.mpi = mpi::MpiConfig{};
  if (tuned) {
    cfg.cosched = core::io_aware_cosched(cfg.daemons.io.priority);
    cfg.mpi->polling_interval = sim::Duration::sec(400);
  } else {
    cfg.cosched = core::paper_cosched();
  }
  return cfg;
}

int lint_admin_file(const std::string& path,
                    const analysis::RuleSelection& rules) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "pasched-lint: cannot read " << path << "\n";
    return 64;
  }
  std::ostringstream text;
  text << in.rdbuf();
  analysis::LintConfig cfg;
  cfg.tunables = core::vanilla_kernel();
  try {
    cfg.admin = core::AdminFile::parse(text.str());
  } catch (const std::logic_error& e) {
    std::cout << path << ":\n  PSL009 ERROR [admin] unparseable: " << e.what()
              << "\n";
    analysis::Diagnostic d;
    d.rule = "PSL009";
    d.severity = analysis::Severity::Error;
    d.subject = path + ": admin";
    d.message = std::string("unparseable: ") + e.what();
    g_collected.push_back(std::move(d));
    return 1;
  }
  return report(path, analysis::lint(cfg, rules));
}

/// Runs a deliberately tight co-scheduling window (so several flips happen
/// in well under a second of simulated time) over the paper's synthetic
/// benchmark on a stock kernel, then mines the event stream. When
/// schedule_path is non-empty, the file (a pasched-mc counterexample) steers
/// every recorded choice point; past the schedule's end, defaults apply.
int run_trace_analysis(int calls, bool verbose,
                       const std::string& schedule_path) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(2);
  cfg.cluster.seed = 1;
  cfg.cluster.node.ncpus = 4;
  // Fill every CPU (no daemon-reserve CPU) so daemons genuinely contend
  // with unfavored tasks — the contention Fig. 4's outliers come from.
  cfg.job.ntasks = 8;
  cfg.job.tasks_per_node = 4;
  cfg.job.seed = 1;
  cfg.use_coscheduler = true;
  cfg.cosched = core::paper_cosched();
  cfg.cosched.period = sim::Duration::ms(100);
  cfg.cosched.duty = 0.50;

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = calls;
  at.warmup = sim::Duration::ms(150);
  core::Simulation sim(cfg, apps::aggregate_trace(at));

  // Schedule-guided replay: steer the engine's choice points with a saved
  // pasched-mc counterexample. The source and tie-break must outlive run().
  mc::Schedule sched;
  if (!schedule_path.empty()) {
    std::ifstream in(schedule_path);
    if (!in) {
      std::cerr << "pasched-lint: cannot read " << schedule_path << "\n";
      return 64;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      sched = mc::Schedule::parse(text.str());
    } catch (const std::logic_error& e) {
      std::cerr << "pasched-lint: " << schedule_path << ": " << e.what()
                << "\n";
      return 64;
    }
  }
  mc::GuidedSource guide(sched);
  sim::SourceTieBreak guided_ties(&guide);
  if (!schedule_path.empty()) {
    sim.engine().set_choice_source(&guide);
    sim.engine().set_tie_break(&guided_ties);
    std::cout << "replaying " << sched.size() << " scheduled choice(s) from "
              << schedule_path << "\n";
  }

  trace::EventLog elog;
  trace::Tracer tracer(/*node_filter=*/-1);
  for (int n = 0; n < sim.cluster().size(); ++n)
    tracer.attach(sim.cluster().node(n).kernel());
  tracer.set_event_log(&elog);
  tracer.enable(sim.engine().now());
  sim.job().set_event_log(&elog);

  const core::SimulationResult result = sim.run();
  std::cout << "trace run: " << (result.completed ? "completed" : "TIMED OUT")
            << " in " << result.elapsed.str() << ", " << elog.size()
            << " events\n";

  analysis::AnalyzerOptions opts;
  opts.min_inversion = sim::Duration::us(100);
  opts.max_findings = verbose ? 16 : 4;
  const analysis::AnalysisReport rep = analysis::analyze(elog.events(), opts);
  std::cout << rep.str();
  collect("trace-run", rep.diagnostics());
  if (!result.completed) return 1;
  return analysis::any_errors(rep.diagnostics()) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::vector<std::string> typos = flags.unknown(
      {"list-rules", "rules", "all-presets", "kernel", "cosched", "scenario",
       "admin", "schedtune", "trace-run", "trace-calls", "schedule",
       "verbose", "json"});
  if (!typos.empty()) {
    std::cerr << "pasched-lint: unknown flag(s):";
    for (const std::string& t : typos) std::cerr << " --" << t;
    std::cerr << "\nusage: pasched-lint [--list-rules] [--rules=all|IDs]"
                 " [--all-presets]\n"
                 "       [--kernel=vanilla|prototype]"
                 " [--cosched=paper|io-aware|none]\n"
                 "       [--scenario=ale3d-naive|ale3d-tuned]"
                 " [--admin=FILE] [--schedtune]\n"
                 "       [--trace-run] [--trace-calls=N] [--schedule=FILE]"
                 " [--verbose] [--json=FILE]\n";
    return 64;
  }

  if (flags.get_bool("list-rules", false)) {
    std::cout << analysis::rule_table();
    return 0;
  }

  analysis::RuleSelection rules;
  try {
    rules = analysis::RuleSelection::parse(flags.get("rules", "all"));
  } catch (const std::logic_error& e) {
    std::cerr << "pasched-lint: " << e.what() << " (--list-rules shows all)\n";
    return 64;
  }

  const std::string kernel = flags.get("kernel", "");
  const std::string cosched = flags.get("cosched", "");
  const std::string scenario = flags.get("scenario", "");
  const std::string admin = flags.get("admin", "");
  const bool verbose = flags.get_bool("verbose", false);
  g_json_path = flags.get("json", "");

  if (flags.get_bool("schedtune", false)) {
    const auto kernels = core::named_kernel_presets();
    const kern::Tunables* t =
        find_kernel(kernels, kernel.empty() ? "prototype" : kernel);
    if (t == nullptr) {
      std::cerr << "pasched-lint: unknown kernel preset '" << kernel << "'\n";
      return 64;
    }
    std::cout << kern::describe_tunables(*t);
    return 0;
  }

  if (flags.get_bool("trace-run", false))
    return finish(run_trace_analysis(
        static_cast<int>(flags.get_int("trace-calls", 400)), verbose,
        flags.get("schedule", "")));

  if (!admin.empty()) return finish(lint_admin_file(admin, rules));

  if (!scenario.empty()) {
    if (scenario != "ale3d-naive" && scenario != "ale3d-tuned") {
      std::cerr << "pasched-lint: unknown scenario '" << scenario << "'\n";
      return 64;
    }
    return finish(report("scenario " + scenario,
                         analysis::lint(ale3d_scenario(scenario == "ale3d-tuned"),
                                        rules)));
  }

  if (!kernel.empty() || !cosched.empty()) {
    const auto kernels = core::named_kernel_presets();
    const auto cloths = core::named_cosched_presets();
    analysis::LintConfig cfg;
    const kern::Tunables* t =
        find_kernel(kernels, kernel.empty() ? "vanilla" : kernel);
    if (t == nullptr) {
      std::cerr << "pasched-lint: unknown kernel preset '" << kernel << "'\n";
      return 64;
    }
    cfg.tunables = *t;
    std::string label = kernel.empty() ? "vanilla" : kernel;
    if (!cosched.empty() && cosched != "none") {
      const core::CoschedConfig* c = find_cosched(cloths, cosched);
      if (c == nullptr) {
        std::cerr << "pasched-lint: unknown cosched preset '" << cosched
                  << "'\n";
        return 64;
      }
      cfg.cosched = *c;
      label += "+" + cosched;
    }
    return finish(report(label, analysis::lint(cfg, rules)));
  }

  // Default (and --all-presets): sweep every shipped preset combination.
  return finish(lint_all_presets(rules));
}
