// pasched-contend: static lock-order & serialization analyzer + runtime
// contention ledger for the partitioned core (PSL501-506).
//
// Where pasched-srclint rejects source patterns and pasched-race audits
// cross-shard causality, contend audits *serialization*: the locks,
// barriers, and shared lines that decide whether 8 workers scale like 8
// (the paper's entire thesis, Fig.5 vs Fig.3):
//
//   PSL501  lock-order cycle in the cross-TU lock-order graph      (ERROR)
//   PSL502  lock held across a blocking seam (barrier/wait/drain)  (ERROR)
//   PSL503  false-sharing layout in a shard-shared class           (WARN)
//   PSL504  shared atomic read-modify-written in a hot loop        (WARN)
//   PSL505  coarse mutex over race::Owned single-domain state      (WARN)
//   PSL506  runtime-refuted PSL505 serialization claim             (ERROR)
//
//   ./pasched-contend [--root=DIR] [--compile-db=FILE] [--only=PSL50x[,..]]
//       [--report=FILE] [--json=FILE] [--graph] [--list-rules] [files...]
//   ./pasched-contend --ledger [--nodes=N] [--workers=N] [--calls=N]
//       [--seed=N] [--json=FILE]
//   ./pasched-contend --plant [--fixtures=DIR]
//
// The default mode statically scans the tree under --root (reusing the
// srclint frontend and compile_commands.json discovery). --ledger addition-
// ally runs the fig5 aggregate-trace scenario on the partitioned core
// (default 8 nodes / 8 workers), ranks the serialization sites by measured
// wait time, and cross-checks every PSL505 claim against the observed
// acquiring domains (PSL506 on refutation) — the certify-then-verify
// contract PSL303 established for scalability certificates. --plant scans
// the planted-violation corpus and synthesizes a multi-domain run against a
// fabricated claim, so one invocation demonstrates all six rules; CI
// asserts it exits 1.
//
// Findings are silenced per line with `// srclint-ok(PSLnnn): reason`.
// Exit status: 0 = no ERROR findings, 1 = ERROR findings, 2 = internal
// model violation, 64 = bad usage.
#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "apps/aggregate_trace.hpp"
#include "check/check.hpp"
#include "contend/ledger.hpp"
#include "contend/runner.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "util/flags.hpp"
#include "util/seam.hpp"

using namespace pasched;

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

struct LedgerParams {
  int nodes = 8;    // fig5's cluster size
  int workers = 8;  // parallel8: one worker per node shard
  int calls = 120;
  std::uint64_t seed = 1;
};

/// Runs the fig5 prototype scenario on the partitioned core with the
/// contention ledger installed; returns its report.
contend::LedgerReport run_fig5_ledger(const LedgerParams& p,
                                      contend::Ledger& ledger) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(p.nodes);
  cfg.cluster.seed = p.seed;
  cfg.cluster.node.tunables = core::prototype_kernel();
  cfg.job.ntasks = p.nodes * 16;
  cfg.job.tasks_per_node = 16;
  cfg.job.seed = p.seed;
  cfg.use_coscheduler = true;
  cfg.cosched = core::paper_cosched();
  cfg.parallel = p.workers;

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = p.calls;
  at.warmup = sim::Duration::sec(6);

  core::Simulation sim(cfg, apps::aggregate_trace(at));
  ledger.reset();
  util::install_seam_observer(&ledger);
  sim.run();
  util::install_seam_observer(nullptr);
  return ledger.report();
}

void append_sorted(contend::ContendReport& rep,
                   std::vector<analysis::Diagnostic> extra) {
  rep.findings.insert(rep.findings.end(),
                      std::make_move_iterator(extra.begin()),
                      std::make_move_iterator(extra.end()));
  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const analysis::Diagnostic& a,
                      const analysis::Diagnostic& b) {
                     return a.subject != b.subject ? a.subject < b.subject
                                                   : a.rule < b.rule;
                   });
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::vector<std::string> typos = flags.unknown(
      {"root", "compile-db", "only", "report", "json", "graph", "list-rules",
       "plant", "fixtures", "ledger", "nodes", "workers", "calls", "seed",
       "max-barrier-wait-share"});
  if (!typos.empty()) {
    std::cerr << "pasched-contend: unknown flag(s):";
    for (const std::string& t : typos) std::cerr << " --" << t;
    std::cerr << "\nusage: pasched-contend [--root=DIR] [--compile-db=FILE]"
                 " [--only=PSL50x[,...]] [--report=FILE] [--json=FILE]"
                 " [--graph] [--list-rules] [files...]\n"
                 "       pasched-contend --ledger [--nodes=N] [--workers=N]"
                 " [--calls=N] [--seed=N] [--json=FILE]"
                 " [--max-barrier-wait-share=F]\n"
                 "       pasched-contend --plant [--fixtures=DIR]\n";
    return 64;
  }
  if (flags.get_bool("list-rules", false)) {
    for (const analysis::RuleInfo& r : analysis::all_rules()) {
      const std::string id(r.id);
      if (id.size() == 6 && id.compare(0, 4, "PSL5") == 0)
        std::cout << id << "  " << analysis::to_string(r.severity)
                  << "\n    invariant: " << r.invariant
                  << "\n    paper:     " << r.paper_ref << "\n";
    }
    return 0;
  }

  contend::ContendOptions opts;
  opts.root = flags.get("root", ".");
  const bool plant = flags.get_bool("plant", false);
  const bool ledger_mode = flags.get_bool("ledger", false);
  if (plant) {
    opts.root = flags.get(
        "fixtures",
        (std::filesystem::path(opts.root) / "tests/contend/fixtures")
            .string());
    if (!std::filesystem::is_directory(opts.root)) {
      std::cerr << "pasched-contend: fixture corpus not found at "
                << opts.root << "\n";
      return 64;
    }
  } else {
    opts.compile_db = flags.get("compile-db", "");
    if (opts.compile_db.empty()) {
      const std::filesystem::path guess =
          std::filesystem::path(opts.root) / "build/compile_commands.json";
      if (std::filesystem::exists(guess)) opts.compile_db = guess.string();
    }
  }
  opts.cfg.only = split_commas(flags.get("only", ""));
  for (const std::string& id : opts.cfg.only) {
    if (analysis::find_rule(id) == nullptr) {
      std::cerr << "pasched-contend: unknown rule " << id << "\n";
      return 64;
    }
  }

  LedgerParams lp;
  lp.nodes = static_cast<int>(flags.get_int("nodes", lp.nodes));
  lp.workers = static_cast<int>(flags.get_int("workers", lp.workers));
  lp.calls = static_cast<int>(flags.get_int("calls", lp.calls));
  lp.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  if (lp.nodes < 2 || lp.workers < 1 || lp.calls < 1) {
    std::cerr << "pasched-contend: --nodes must be >= 2 and --workers/"
                 "--calls positive\n";
    return 64;
  }

  contend::ContendReport rep;
  contend::Ledger ledger;
  contend::LedgerReport lrep;
  bool ledger_ran = false;
  try {
    if (!flags.positional().empty())
      rep = contend::run_files(opts, flags.positional());
    else
      rep = contend::run_tree(opts);

    if (plant) {
      // The PSL506 leg: a synthetic multi-domain run against a fabricated
      // single-domain claim on the inbox seam. Every shard worker acquires
      // Inbox.mu under its own race::Domain, so the ledger must refute it.
#if PASCHED_VALIDATE_ENABLED
      LedgerParams tiny;
      tiny.nodes = 2;
      tiny.workers = 2;
      tiny.calls = 8;
      lrep = run_fig5_ledger(tiny, ledger);
      ledger_ran = true;
      std::vector<contend::SerializationClaim> planted = rep.claims;
      planted.push_back(contend::SerializationClaim{
          "Inbox.mu", "tests/contend/fixtures/planted-claim", 1});
      append_sorted(rep, ledger.check_claims(planted));
#else
      std::cout << "pasched-contend: PSL506 leg skipped (seams are "
                   "uninstrumented under -DPASCHED_VALIDATE=OFF)\n";
#endif
    } else if (ledger_mode) {
#if PASCHED_VALIDATE_ENABLED
      lrep = run_fig5_ledger(lp, ledger);
      ledger_ran = true;
      append_sorted(rep, ledger.check_claims(rep.claims));
#endif
    }
  } catch (const check::CheckError& e) {
    std::cerr << "pasched-contend: model invariant violated: " << e.what()
              << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "pasched-contend: " << e.what() << "\n";
    return 64;
  }

  std::cout << rep.str();
  if (flags.get_bool("graph", false)) {
    std::cout << "lock-order graph (" << rep.graph.size() << " edges):\n";
    for (const std::string& e : rep.graph) std::cout << "  " << e << "\n";
  }
  if (ledger_ran) {
    std::cout << lrep.str();
    if (lrep.sites.empty())
      std::cout << "pasched-contend: ledger recorded nothing (no "
                   "instrumented seam crossed)\n";
  } else if (ledger_mode) {
    std::cout << "pasched-contend: ledger unavailable under "
                 "-DPASCHED_VALIDATE=OFF (seams compile to plain "
                 "std::mutex/std::barrier)\n";
  }

  const std::string report_file = flags.get("report", "");
  if (!report_file.empty()) {
    std::ofstream out(report_file);
    out << rep.str();
    if (ledger_ran) out << lrep.str();
    std::cout << "report written to " << report_file << "\n";
  }
  const std::string json_file = flags.get("json", "");
  if (!json_file.empty()) {
    std::ofstream out(json_file);
    std::string js = rep.json();
    if (ledger_ran) {
      // Splice the ledger object into the report before the closing brace.
      const std::size_t pos = js.rfind("\n}");
      js.insert(pos, ",\n  \"ledger\": " + lrep.json(2));
    }
    out << js;
    std::cout << "json written to " << json_file << "\n";
  }

  // Scalability regression gate (the nightly CI wiring): the ledger's
  // barrier_wait_share is the fraction of measured wait the global round
  // barrier still carries. The per-pair planner exists to keep it low —
  // fail loudly if a regression pushes serialization back onto the barrier.
  const double max_share = flags.get_double("max-barrier-wait-share", -1.0);
  if (max_share >= 0.0 && ledger_ran &&
      lrep.barrier_wait_share > max_share) {
    std::cout << "pasched-contend: FAIL (barrier_wait_share "
              << lrep.barrier_wait_share << " > " << max_share << ")\n";
    return 1;
  }

  if (rep.clean()) {
    std::cout << "pasched-contend: PASS\n";
    return 0;
  }
  return analysis::any_errors(rep.findings) ? 1 : 0;
}
