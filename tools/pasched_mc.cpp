// pasched-mc: the bounded schedule-space model checker front-end. Explores
// every same-timestamp event ordering, daemon arrival phase, and tick
// stagger of a small scenario (see --list-configs) up to a depth/run
// budget, checking four oracles per interleaving: safety (engine + kernel
// invariants and the CPU-time conservation audit at every quiescent
// point), bounded liveness (every Ready thread dispatched within a
// window), completion at the horizon (lost wakeups), and cross-run outcome
// divergence.
//
//   ./pasched-mc --config=clean                     # certify exhaustively
//   ./pasched-mc --config=lost-wakeup --shrink      # find + minimize
//   ./pasched-mc --config=starvation --schedule-out=cex.sched
//   ./pasched-mc --config=starvation --replay=cex.sched
//   ./pasched-mc --list-configs
//
// Exit status: 0 = certified clean, 1 = violation found, 2 = no violation
// but the budget clipped exploration (NOT a certificate), 64 = bad usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "mc/configs.hpp"
#include "mc/explorer.hpp"
#include "mc/schedule.hpp"
#include "util/flags.hpp"

using namespace pasched;

namespace {

/// Machine-readable result for --json=FILE: the shared schema/tool header,
/// the run mode and verdict, exploration stats when present, and the
/// violation (oracle + message) when one was found.
void write_json(const std::string& path, const std::string& config,
                const char* mode, const char* verdict,
                const mc::ExploreStats* stats, const mc::Violation* v) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "pasched-mc: cannot write " << path << "\n";
    return;
  }
  out << "{\n  " << analysis::json_report_header("pasched-mc") << "\n"
      << "  \"config\": \"" << analysis::json_escape(config) << "\",\n"
      << "  \"mode\": \"" << mode << "\",\n"
      << "  \"verdict\": \"" << verdict << "\",\n";
  if (stats != nullptr)
    out << "  \"runs\": " << stats->runs << ",\n"
        << "  \"steps\": " << stats->steps << ",\n"
        << "  \"branches\": " << stats->branches << ",\n"
        << "  \"dpor_skips\": " << stats->dpor_skips << ",\n"
        << "  \"visited_prunes\": " << stats->visited_prunes << ",\n"
        << "  \"clipped\": " << (stats->clipped ? "true" : "false") << ",\n";
  if (v != nullptr)
    out << "  \"violation\": {\"oracle\": \"" << mc::to_string(v->oracle)
        << "\", \"message\": \"" << analysis::json_escape(v->message)
        << "\"}\n";
  else
    out << "  \"violation\": null\n";
  out << "}\n";
  std::cout << "json report written to " << path << "\n";
}

void print_stats(const mc::ExploreStats& s) {
  std::cout << "  runs=" << s.runs << " steps=" << s.steps
            << " branches=" << s.branches << " dpor-skips=" << s.dpor_skips
            << " visited-prunes=" << s.visited_prunes << "\n"
            << "  reduction ratio (naive/explored branches): ";
  std::cout.setf(std::ios::fixed);
  std::cout.precision(2);
  std::cout << s.reduction_ratio() << "\n";
  std::cout.unsetf(std::ios::fixed);
}

int report_violation(const mc::Violation& v, mc::Explorer& ex, bool shrink,
                     const std::string& out_path, const std::string& config) {
  std::cout << "VIOLATION (" << mc::to_string(v.oracle) << "): " << v.message
            << "\n";
  mc::Schedule cex = v.schedule;
  if (shrink) {
    cex = ex.shrink(cex, v.oracle);
    std::cout << "counterexample (shrunk " << v.schedule.size() << " -> "
              << cex.size() << " choices, " << cex.deviations()
              << " non-default):\n";
  } else {
    std::cout << "counterexample (" << cex.size() << " choices, "
              << cex.deviations() << " non-default):\n";
  }
  std::istringstream lines(cex.str());
  std::string line;
  while (std::getline(lines, line)) std::cout << "  " << line << "\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "pasched-mc: cannot write " << out_path << "\n";
      return 64;
    }
    out << "# config: " << config << "\n" << cex.serialize();
    std::cout << "schedule written to " << out_path
              << " — replay with --replay=" << out_path
              << " or pasched-lint --trace-run --schedule=" << out_path
              << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::vector<std::string> typos = flags.unknown(
      {"config", "list-configs", "depth", "max-runs", "window", "tolerance",
       "no-reduce", "no-prune", "shrink", "replay", "schedule-out",
       "verbose", "json"});
  if (!typos.empty()) {
    std::cerr << "pasched-mc: unknown flag(s):";
    for (const std::string& t : typos) std::cerr << " --" << t;
    std::cerr << "\nusage: pasched-mc --config=NAME [--list-configs]\n"
                 "       [--depth=N] [--max-runs=N] [--window=US]"
                 " [--tolerance=SEC]\n"
                 "       [--no-reduce] [--no-prune] [--shrink]\n"
                 "       [--replay=FILE] [--schedule-out=FILE] [--verbose]"
                 " [--json=FILE]\n";
    return 64;
  }

  if (flags.get_bool("list-configs", false)) {
    for (const mc::NamedModel& m : mc::model_zoo())
      std::cout << m.name << " — " << m.description << "\n";
    return 0;
  }

  const std::string config = flags.get("config", "");
  if (config.empty()) {
    std::cerr << "pasched-mc: --config=NAME required (--list-configs shows "
                 "all)\n";
    return 64;
  }
  mc::ModelFactory factory = mc::find_model(config);
  if (!factory) {
    std::cerr << "pasched-mc: unknown config '" << config
              << "' (--list-configs shows all)\n";
    return 64;
  }

  mc::ExploreOptions opts;
  opts.max_runs = static_cast<std::size_t>(flags.get_int("max-runs", 20000));
  opts.max_depth = static_cast<std::size_t>(flags.get_int("depth", 256));
  const long long window_us = flags.get_int("window", -1);
  if (window_us >= 0) opts.liveness_window = sim::Duration::us(window_us);
  const double tol = flags.get_double("tolerance", -1.0);
  if (tol >= 0.0) opts.divergence_tolerance = tol;
  opts.reduce = !flags.get_bool("no-reduce", false);
  opts.prune = !flags.get_bool("no-prune", false);
  const bool shrink = flags.get_bool("shrink", false);
  const std::string out_path = flags.get("schedule-out", "");
  const std::string replay_path = flags.get("replay", "");
  const std::string json_path = flags.get("json", "");

  mc::Explorer explorer(factory, opts);

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::cerr << "pasched-mc: cannot read " << replay_path << "\n";
      return 64;
    }
    std::ostringstream text;
    text << in.rdbuf();
    mc::Schedule sched;
    try {
      sched = mc::Schedule::parse(text.str());
    } catch (const std::logic_error& e) {
      std::cerr << "pasched-mc: " << replay_path << ": " << e.what() << "\n";
      return 64;
    }
    std::cout << "replaying " << sched.size() << " choices against '"
              << config << "'\n";
    const mc::RunRecord rec = explorer.run_schedule(sched);
    if (rec.violation) {
      std::cout << "VIOLATION (" << mc::to_string(rec.violation->oracle)
                << "): " << rec.violation->message << "\n";
      if (!json_path.empty())
        write_json(json_path, config, "replay", "violation", nullptr,
                   &*rec.violation);
      return 1;
    }
    std::cout << "replay clean (outcome " << rec.outcome << "s, "
              << rec.events.size() << " events)\n";
    if (!json_path.empty())
      write_json(json_path, config, "replay", "clean", nullptr, nullptr);
    return 0;
  }

  std::cout << "exploring '" << config << "' (max " << opts.max_runs
            << " runs, depth " << opts.max_depth << ", reduce="
            << (opts.reduce ? "on" : "off") << ", prune="
            << (opts.prune ? "on" : "off") << ")\n";
  const mc::ExploreResult res = explorer.explore();
  print_stats(res.stats);
  if (flags.get_bool("verbose", false))
    std::cout << "  outcome range: [" << res.min_outcome << "s, "
              << res.max_outcome << "s]\n";
  if (res.violation) {
    if (!json_path.empty())
      write_json(json_path, config, "explore", "violation", &res.stats,
                 &*res.violation);
    return report_violation(*res.violation, explorer, shrink, out_path,
                            config);
  }
  if (res.stats.clipped) {
    std::cout << "no violation found, but the budget clipped exploration — "
                 "NOT a certificate\n";
    if (!json_path.empty())
      write_json(json_path, config, "explore", "clipped", &res.stats, nullptr);
    return 2;
  }
  std::cout << "certified: all interleavings within the horizon satisfy "
               "every oracle\n";
  if (!json_path.empty())
    write_json(json_path, config, "explore", "certified", &res.stats, nullptr);
  return 0;
}
