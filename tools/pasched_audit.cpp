// pasched-audit: the reproducibility and self-consistency gate.
//
// For each kernel preset it runs the paper's synthetic Allreduce benchmark
// TWICE with the same seed, folds every scheduling-visible artifact — the
// full per-CPU occupancy trace, scheduler event counts, per-node accounting,
// and the job's timing statistics — into a single hash, and fails if the two
// runs differ in any bit. It then audits every node with check::Auditor
// (CPU-time conservation, run-queue consistency) and the engine's structural
// audit. CI runs this to prove the simulator stays deterministic.
//
//   ./pasched-audit [--nodes=4] [--tasks-per-node=16] [--calls=120]
//       [--seed=1] [--verbose]
//
// With --parallel-equivalence it instead proves the partitioned execution
// mode faithful: each scenario runs under the classic single-queue engine,
// --parallel=1 and --parallel=<workers>, and the three canonical history
// digests (scheduling intervals + analyzer events + per-rank finish times,
// truncated at job completion) must be identical.
//
//   ./pasched-audit --parallel-equivalence [--workers=8] [--nodes=4] ...
//
// Exit status: 0 = reproducible and consistent, 1 = divergence, 2 = a model
// invariant is violated, 64 = bad usage.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "apps/aggregate_trace.hpp"
#include "apps/channels.hpp"
#include "check/audit.hpp"
#include "check/check.hpp"
#include "core/equivalence.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "trace/trace.hpp"
#include "util/flags.hpp"

using namespace pasched;

namespace {

/// FNV-1a, folded 8 bytes at a time.
class Hasher {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffU;
      h_ *= 0x100000001b3ULL;
    }
  }
  void mix_int(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  }
  void mix_str(const std::string& s) {
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ULL;
    }
    mix(s.size());
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

struct AuditParams {
  int nodes = 4;
  int tasks_per_node = 16;
  int calls = 120;
  std::uint64_t seed = 1;
  bool verbose = false;
};

/// One row of the --json=FILE report, filled per audited scenario.
struct ScenarioRow {
  std::string name;
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  bool completed = false;
  bool ok = false;
};

std::vector<ScenarioRow> g_rows;

void write_json(const std::string& path, const char* mode, int rc) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "pasched-audit: cannot write " << path << "\n";
    return;
  }
  out << "{\n  " << analysis::json_report_header("pasched-audit") << "\n"
      << "  \"mode\": \"" << mode << "\",\n"
      << "  \"pass\": " << (rc == 0 ? "true" : "false") << ",\n"
      << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const ScenarioRow& r = g_rows[i];
    out << "    {\"name\": \"" << analysis::json_escape(r.name)
        << "\", \"hash\": \"0x" << std::hex << r.hash << std::dec
        << "\", \"events\": " << r.events
        << ", \"completed\": " << (r.completed ? "true" : "false")
        << ", \"ok\": " << (r.ok ? "true" : "false") << "}"
        << (i + 1 < g_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "json report written to " << path << "\n";
}

struct RunDigest {
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  bool completed = false;
  bool invariants_ok = false;
  std::string invariant_error;
};

RunDigest run_scenario(const AuditParams& p, bool prototype) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(p.nodes);
  cfg.cluster.seed = p.seed;
  cfg.cluster.node.tunables =
      prototype ? core::prototype_kernel() : core::vanilla_kernel();
  cfg.job.ntasks = p.nodes * p.tasks_per_node;
  cfg.job.tasks_per_node = p.tasks_per_node;
  cfg.job.seed = p.seed;
  cfg.use_coscheduler = prototype;
  cfg.cosched = core::paper_cosched();

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = p.calls;
  at.warmup = sim::Duration::sec(6);
  core::Simulation sim(cfg, apps::aggregate_trace(at));

  // One tracer observes every node; recording from t=0 captures the full
  // occupancy history, which is the strongest determinism witness we have.
  trace::Tracer tracer(/*node_filter=*/-1);
  for (int n = 0; n < sim.cluster().size(); ++n)
    tracer.attach(sim.cluster().node(n).kernel());
  tracer.enable(sim.engine().now());

  const core::SimulationResult result = sim.run();

  RunDigest d;
  d.events = result.events;
  d.completed = result.completed;

  Hasher h;
  h.mix_int(result.elapsed.count());
  h.mix(result.events);
  h.mix(result.completed ? 1 : 0);
  for (const trace::Interval& iv : tracer.intervals()) {
    h.mix_int(iv.begin.count());
    h.mix_int(iv.end.count());
    h.mix_int(iv.node);
    h.mix_int(iv.cpu);
    h.mix_int(iv.thread->tid());
    h.mix_str(iv.thread->name());
  }
  h.mix(tracer.counts().dispatches);
  h.mix(tracer.counts().preemptions);
  h.mix(tracer.counts().ticks);
  h.mix(tracer.counts().ipis);
  for (int n = 0; n < sim.cluster().size(); ++n) {
    const kern::Accounting& a = sim.cluster().node(n).kernel().accounting();
    for (const sim::Duration dur : a.class_cpu) h.mix_int(dur.count());
    h.mix_int(a.tick_cpu.count());
    h.mix_int(a.busy_cpu.count());
    h.mix_int(a.idle_cpu.count());
    h.mix(a.ticks_taken);
    h.mix(a.ipis_sent);
    h.mix(a.preemptions);
    h.mix(a.dispatches);
  }
  const mpi::ChannelStats& ch = sim.job().channel(apps::kChanAllreduce);
  h.mix(ch.all_us.count());
  h.mix_double(ch.all_us.mean());
  h.mix_double(ch.all_us.max());
  for (const double us : ch.recorded_us) h.mix_double(us);
  d.hash = h.value();

  // Self-consistency: engine structure plus every node's conservation and
  // run-queue invariants at the quiescent end-of-run point.
  d.invariants_ok = true;
  try {
    sim.engine().check_consistent();
    for (int n = 0; n < sim.cluster().size(); ++n) {
      const kern::Kernel& k = sim.cluster().node(n).kernel();
      check::Auditor::verify_conservation(k);
      check::Auditor::verify_runqueues(k);
      if (p.verbose) {
        std::cout << "  node " << n << ": "
                  << check::Auditor::conservation(k).str() << "\n";
      }
    }
  } catch (const check::CheckError& e) {
    d.invariants_ok = false;
    d.invariant_error = e.what();
  }
  return d;
}

/// The execution-mode equivalence gate: classic vs --parallel=1 vs
/// --parallel=<workers> (per-pair planner) vs --parallel=<workers> under
/// the legacy global-window planner, on the fig3 (vanilla) and fig5
/// (prototype + co-scheduler) scenario shapes. The fourth digest pins the
/// per-pair window planner to the one-global-window schedule it refactored
/// away — any window-schedule dependence in the workload shows up here.
int run_parallel_equivalence(const AuditParams& p, int workers) {
  int rc = 0;
  for (const bool prototype : {false, true}) {
    const char* name = prototype ? "fig5-prototype+cosched" : "fig3-vanilla";
    core::SimulationConfig cfg;
    cfg.cluster = cluster::presets::frost(p.nodes);
    cfg.cluster.seed = p.seed;
    cfg.cluster.node.tunables =
        prototype ? core::prototype_kernel() : core::vanilla_kernel();
    cfg.job.ntasks = p.nodes * p.tasks_per_node;
    cfg.job.tasks_per_node = p.tasks_per_node;
    cfg.job.seed = p.seed;
    cfg.use_coscheduler = prototype;
    cfg.cosched = core::paper_cosched();

    apps::AggregateTraceConfig at;
    at.loops = 1;
    at.calls_per_loop = p.calls;
    at.warmup = sim::Duration::sec(6);
    const mpi::WorkloadFactory factory = apps::aggregate_trace(at);

    std::cout << "scenario " << name << ": legacy..." << std::flush;
    cfg.parallel = 0;
    const core::CanonicalDigest legacy = core::run_canonical(cfg, factory);
    std::cout << " parallel=1..." << std::flush;
    cfg.parallel = 1;
    const core::CanonicalDigest par1 = core::run_canonical(cfg, factory);
    std::cout << " parallel=" << workers << "..." << std::flush;
    cfg.parallel = workers;
    const core::CanonicalDigest parn = core::run_canonical(cfg, factory);
    std::cout << " parallel=" << workers << "/global..." << std::flush;
    cfg.planner = sim::PlannerMode::Global;
    const core::CanonicalDigest parg = core::run_canonical(cfg, factory);
    cfg.planner = sim::PlannerMode::PerPair;

    std::cout << "\n  legacy     hash=" << std::hex << legacy.hash << std::dec
              << " completed=" << legacy.completed
              << " events=" << legacy.events << "\n  parallel=1 hash="
              << std::hex << par1.hash << std::dec
              << " completed=" << par1.completed << " events=" << par1.events
              << "\n  parallel=" << workers << " hash=" << std::hex
              << parn.hash << std::dec << " completed=" << parn.completed
              << " events=" << parn.events << "\n  par" << workers
              << "/global hash=" << std::hex << parg.hash << std::dec
              << " completed=" << parg.completed << " events=" << parg.events
              << "\n";
    ScenarioRow row;
    row.name = name;
    row.hash = legacy.hash;
    row.events = legacy.events;
    row.completed = legacy.completed && par1.completed && parn.completed &&
                    parg.completed;
    if (!row.completed) {
      std::cout << "  FAIL: a mode did not run the job to completion\n";
      g_rows.push_back(row);
      rc = 1;
      continue;
    }
    if (legacy.hash != par1.hash || par1.hash != parn.hash ||
        parn.hash != parg.hash ||
        legacy.elapsed.count() != par1.elapsed.count() ||
        par1.elapsed.count() != parn.elapsed.count() ||
        parn.elapsed.count() != parg.elapsed.count()) {
      std::cout << "  FAIL: execution modes diverged\n";
      g_rows.push_back(row);
      rc = 1;
      continue;
    }
    row.ok = true;
    g_rows.push_back(row);
    std::cout << "  OK: all four execution modes are bit-identical\n";
  }
  if (rc == 0) std::cout << "pasched-audit: PASS (parallel equivalence)\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  // An audit gate must not silently ignore a typo'd flag — a misspelled
  // --seed would "pass" the wrong scenario.
  const std::vector<std::string> typos =
      flags.unknown({"nodes", "tasks-per-node", "calls", "seed", "verbose",
                     "parallel-equivalence", "workers", "json"});
  if (!typos.empty()) {
    std::cerr << "pasched-audit: unknown flag(s):";
    for (const std::string& t : typos) std::cerr << " --" << t;
    std::cerr << "\nusage: pasched-audit [--nodes=N] [--tasks-per-node=N]"
                 " [--calls=N] [--seed=N] [--verbose]"
                 " [--parallel-equivalence [--workers=N]] [--json=FILE]\n";
    return 64;
  }
  AuditParams p;
  p.nodes = static_cast<int>(flags.get_int("nodes", p.nodes));
  p.tasks_per_node =
      static_cast<int>(flags.get_int("tasks-per-node", p.tasks_per_node));
  p.calls = static_cast<int>(flags.get_int("calls", p.calls));
  p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  p.verbose = flags.get_bool("verbose", false);
  if (p.nodes < 1 || p.tasks_per_node < 1 || p.calls < 1) {
    std::cerr << "pasched-audit: --nodes, --tasks-per-node and --calls must"
                 " be positive\n";
    return 64;
  }

  const std::string json_path = flags.get("json", "");

  if (flags.get_bool("parallel-equivalence", false)) {
    const int workers = static_cast<int>(flags.get_int("workers", 8));
    if (workers < 1) {
      std::cerr << "pasched-audit: --workers must be positive\n";
      return 64;
    }
    const int rc = run_parallel_equivalence(p, workers);
    if (!json_path.empty()) write_json(json_path, "parallel-equivalence", rc);
    return rc;
  }

  int rc = 0;
  for (const bool prototype : {false, true}) {
    const char* name = prototype ? "prototype+cosched" : "vanilla";
    std::cout << "scenario " << name << ": run 1..." << std::flush;
    const RunDigest a = run_scenario(p, prototype);
    std::cout << " run 2..." << std::flush;
    const RunDigest b = run_scenario(p, prototype);
    std::cout << "\n  events=" << a.events << " completed=" << a.completed
              << " hash=" << std::hex << a.hash << std::dec << "\n";

    ScenarioRow row;
    row.name = name;
    row.hash = a.hash;
    row.events = a.events;
    row.completed = a.completed;
    if (a.hash != b.hash || a.events != b.events) {
      std::cout << "  FAIL: runs diverged (second hash=" << std::hex << b.hash
                << std::dec << ", events=" << b.events << ")\n";
      g_rows.push_back(row);
      rc = rc == 0 ? 1 : rc;
      continue;
    }
    if (!a.invariants_ok || !b.invariants_ok) {
      std::cout << "  FAIL: invariant violated: "
                << (a.invariants_ok ? b.invariant_error : a.invariant_error)
                << "\n";
      g_rows.push_back(row);
      rc = 2;
      continue;
    }
    row.ok = true;
    g_rows.push_back(row);
    std::cout << "  OK: bit-identical and self-consistent\n";
  }
  if (!json_path.empty()) write_json(json_path, "reproducibility", rc);
  if (rc == 0) std::cout << "pasched-audit: PASS\n";
  return rc;
}
