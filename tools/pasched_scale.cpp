// pasched-scale: the static scalability analyzer for the partitioned
// execution core.
//
// Two halves per scenario (fig3 = vanilla kernel, fig5 = prototype kernel +
// co-scheduler):
//
//  - Static: the per-shard-pair guaranteed-lookahead matrix, computed from
//    the fabric topology alone and compared against the single global bound
//    the executor uses today. Emitted as a machine-readable certificate for
//    a per-pair window planner; a RunMonitor on the cross-shard delivery
//    seam certifies every actual delivery against it (PSL303 ERROR when a
//    claim is unsound).
//  - Trace: work/span critical path over the happens-before graph (the
//    speedup no executor can beat) and per-window event accounting through
//    the barrier-cost model (the speedup this executor will deliver).
//
// Findings: PSL301 lookahead collapse, PSL302 barrier-dominated windows,
// PSL303 unsound lookahead claim, PSL304 shard load imbalance, PSL305 hub
// serialization, PSL306 speedup ceiling below target.
//
//   ./pasched-scale [--scenario=fig3|fig5|both] [--nodes=N]
//       [--tasks-per-node=N] [--calls=N] [--seed=N] [--workers=N]
//       [--target-workers=N] [--target-speedup=X]
//       [--planner=perpair|global] [--batch=N]
//       [--report=FILE] [--json=FILE]
//
// --planner/--batch select the executor's window planner (global = the
// legacy one-window-per-round schedule; CI divides the two runs' sync-round
// counts for the scalability smoke). When the validation build can install
// a contention ledger, the barrier-cost model prices rounds with the
// *measured* per-round barrier wait instead of the default constant
// (reported as barrier_cost_source = "measured").
//
// --plant-unsound-bound inflates every matrix claim 4x before the run: real
// deliveries then undercut the planted certificate and the monitor must
// report PSL303 (exit 1). This is the CI regression for the soundness seam.
//
// Exit status: 0 = clean or warnings only, 1 = PSL3xx ERROR findings,
// 2 = a model invariant is violated, 64 = bad usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "apps/aggregate_trace.hpp"
#include "check/check.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "scale/runner.hpp"
#include "util/flags.hpp"

using namespace pasched;

namespace {

struct Params {
  int nodes = 4;
  int tasks_per_node = 8;
  int calls = 60;
  std::uint64_t seed = 1;
  int workers = 1;
  bool plant = false;
  std::string scenario = "both";
  std::string report;
  std::string json;
  scale::ScaleOptions opts;
};

struct Scenario {
  const char* name;
  core::SimulationConfig cfg;
  mpi::WorkloadFactory factory;
};

Scenario make_scenario(const Params& p, bool prototype) {
  Scenario s;
  s.name = prototype ? "fig5-prototype+cosched" : "fig3-vanilla";
  s.cfg.cluster = cluster::presets::frost(p.nodes);
  s.cfg.cluster.seed = p.seed;
  s.cfg.cluster.node.tunables =
      prototype ? core::prototype_kernel() : core::vanilla_kernel();
  s.cfg.job.ntasks = p.nodes * p.tasks_per_node;
  s.cfg.job.tasks_per_node = p.tasks_per_node;
  s.cfg.job.seed = p.seed;
  s.cfg.use_coscheduler = prototype;
  s.cfg.cosched = core::paper_cosched();
  s.cfg.parallel = p.workers;

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = p.calls;
  at.warmup = sim::Duration::sec(6);
  s.factory = apps::aggregate_trace(at);
  return s;
}

/// Analyzes one scenario; returns the exit code contribution (0 or 1).
int run_one(const Scenario& s, const Params& p, std::ostream& report,
            std::vector<std::string>& json_reports) {
  std::cout << "scenario " << s.name << ": analyze (workers=" << p.workers
            << (p.plant ? ", planted unsound bound" : "") << ")..."
            << std::flush;

  scale::ScaleReport rep;
  if (p.plant) {
    // Inflate EVERY pairwise claim: allreduce traffic flows through the
    // hub, so inflating a single node-node pair might never be exercised.
    scale::LookaheadMatrix planted = scale::build_lookahead_matrix(
        s.cfg.cluster.fabric, s.cfg.cluster.nodes);
    for (int a = 0; a < planted.shards; ++a)
      for (int b = 0; b < planted.shards; ++b)
        if (a != b) planted.set(a, b, planted.at(a, b) * 4);
    rep = scale::analyze_scenario(s.cfg, s.factory, s.name, p.opts, &planted);
  } else {
    rep = scale::analyze_scenario(s.cfg, s.factory, s.name, p.opts);
  }

  std::cout << " windows=" << rep.windows.n_windows()
            << " posts=" << rep.posts_checked
            << " ceiling=" << rep.predicted_max_speedup() << "x\n";
  report << rep.str() << "\n";
  json_reports.push_back(rep.json());

  const auto findings = rep.diagnostics();
  if (findings.empty()) {
    std::cout << "  OK: no PSL3xx findings\n";
    return 0;
  }
  std::cout << "  FINDINGS (" << findings.size() << "):\n";
  for (const analysis::Diagnostic& d : findings)
    std::cout << "    " << d.str() << "\n";
  return analysis::any_errors(findings) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::vector<std::string> typos = flags.unknown(
      {"scenario", "workers", "nodes", "tasks-per-node", "calls", "seed",
       "target-workers", "target-speedup", "plant-unsound-bound", "report",
       "json", "planner", "batch"});
  if (!typos.empty()) {
    std::cerr << "pasched-scale: unknown flag(s):";
    for (const std::string& t : typos) std::cerr << " --" << t;
    std::cerr << "\nusage: pasched-scale [--scenario=fig3|fig5|both]"
                 " [--nodes=N] [--tasks-per-node=N] [--calls=N] [--seed=N]"
                 " [--workers=N] [--target-workers=N] [--target-speedup=X]"
                 " [--planner=perpair|global] [--batch=N]"
                 " [--plant-unsound-bound] [--report=FILE] [--json=FILE]\n";
    return 64;
  }
  Params p;
  p.nodes = static_cast<int>(flags.get_int("nodes", p.nodes));
  p.tasks_per_node =
      static_cast<int>(flags.get_int("tasks-per-node", p.tasks_per_node));
  p.calls = static_cast<int>(flags.get_int("calls", p.calls));
  p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  p.workers = static_cast<int>(flags.get_int("workers", p.workers));
  p.plant = flags.get_bool("plant-unsound-bound", false);
  p.scenario = flags.get("scenario", "both");
  p.report = flags.get("report", "");
  p.json = flags.get("json", "");
  p.opts.target_workers =
      static_cast<int>(flags.get_int("target-workers", p.opts.target_workers));
  p.opts.target_speedup =
      flags.get_double("target-speedup", p.opts.target_speedup);
  const std::string planner = flags.get("planner", "perpair");
  if (planner == "global") {
    p.opts.planner = sim::PlannerMode::Global;
  } else if (planner != "perpair") {
    std::cerr << "pasched-scale: --planner must be perpair or global\n";
    return 64;
  }
  p.opts.window_batch =
      static_cast<int>(flags.get_int("batch", p.opts.window_batch));
  if (p.opts.window_batch < 1) {
    std::cerr << "pasched-scale: --batch must be positive\n";
    return 64;
  }
  if (p.nodes < 2 || p.tasks_per_node < 1 || p.calls < 1 || p.workers < 1 ||
      p.opts.target_workers < 1) {
    std::cerr << "pasched-scale: --nodes must be >= 2 (a single shard has "
                 "no pairs to certify) and --tasks-per-node/--calls/"
                 "--workers/--target-workers positive\n";
    return 64;
  }
  if (p.scenario != "fig3" && p.scenario != "fig5" && p.scenario != "both") {
    std::cerr << "pasched-scale: --scenario must be fig3, fig5 or both\n";
    return 64;
  }

  std::ostringstream report;
  std::vector<std::string> json_reports;
  int rc = 0;
  try {
    if (p.scenario != "fig5")
      rc = std::max(rc,
                    run_one(make_scenario(p, false), p, report, json_reports));
    if (p.scenario != "fig3")
      rc = std::max(rc,
                    run_one(make_scenario(p, true), p, report, json_reports));
  } catch (const check::CheckError& e) {
    std::cerr << "pasched-scale: model invariant violated: " << e.what()
              << "\n";
    return 2;
  }

  if (!p.report.empty()) {
    std::ofstream out(p.report);
    out << report.str();
    std::cout << "report written to " << p.report << "\n";
  }
  if (!p.json.empty()) {
    std::ofstream out(p.json);
    out << "[\n";
    for (std::size_t i = 0; i < json_reports.size(); ++i)
      out << json_reports[i]
          << (i + 1 < json_reports.size() ? ",\n" : "");
    out << "]\n";
    std::cout << "json written to " << p.json << "\n";
  }
  if (rc == 0) std::cout << "pasched-scale: PASS\n";
  return rc;
}
