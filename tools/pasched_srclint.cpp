// pasched-srclint: source-level architecture & hot-path lint for this
// repository (PSL401-406).
//
// Where pasched-race and pasched-scale audit *executions*, srclint rejects
// the source patterns that make those audits fail before a run exists:
//
//   PSL401  raw sim::Engine access outside the Router/EventContext seam
//   PSL402  shard-resident type / mutable field without ownership discipline
//   PSL403  allocation, locking, throw, blocking, or I/O inside PASCHED_HOT
//   PSL404  side effects inside vanishing PASCHED_CHECK/ASSERT arguments
//   PSL405  nondeterminism sources in the deterministic core (sim/kern/net/mpi)
//   PSL406  thread creation outside the ShardedEngine worker pool
//
//   ./pasched-srclint [--root=DIR] [--compile-db=FILE] [--only=PSL40x[,..]]
//       [--report=FILE] [--json=FILE] [--list-rules] [files...]
//   ./pasched-srclint --plant [--fixtures=DIR]
//
// Scans the tree under --root (default: the current directory), preferring
// the translation units listed in --compile-db (compile_commands.json,
// auto-detected at <root>/build/compile_commands.json) augmented with
// headers. Positional arguments restrict the scan to those root-relative
// files. --plant scans the planted-violation fixture corpus instead
// (default <root>/tests/srclint/fixtures) and is expected to exit 1 — CI
// asserts both directions of the gate.
//
// Findings are silenced per line with `// srclint-ok(PSLnnn): reason`;
// honored suppressions are counted in the report so they stay auditable.
//
// Exit status: 0 = no findings, 1 = ERROR findings, 2 = internal model
// violation, 64 = bad usage.
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "check/check.hpp"
#include "srclint/runner.hpp"
#include "util/flags.hpp"

using namespace pasched;

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::vector<std::string> typos = flags.unknown(
      {"root", "compile-db", "only", "report", "json", "list-rules", "plant",
       "fixtures"});
  if (!typos.empty()) {
    std::cerr << "pasched-srclint: unknown flag(s):";
    for (const std::string& t : typos) std::cerr << " --" << t;
    std::cerr << "\nusage: pasched-srclint [--root=DIR] [--compile-db=FILE]"
                 " [--only=PSL40x[,...]] [--report=FILE] [--json=FILE]"
                 " [--list-rules] [--plant [--fixtures=DIR]] [files...]\n";
    return 64;
  }
  if (flags.get_bool("list-rules", false)) {
    for (const analysis::RuleInfo& r : analysis::all_rules()) {
      const std::string id(r.id);
      if (id.size() == 6 && id.compare(0, 4, "PSL4") == 0)
        std::cout << id << "  " << analysis::to_string(r.severity)
                  << "\n    invariant: " << r.invariant
                  << "\n    paper:     " << r.paper_ref << "\n";
    }
    return 0;
  }

  srclint::SrclintOptions opts;
  opts.root = flags.get("root", ".");
  const bool plant = flags.get_bool("plant", false);
  if (plant) {
    opts.root = flags.get(
        "fixtures",
        (std::filesystem::path(opts.root) / "tests/srclint/fixtures")
            .string());
    if (!std::filesystem::is_directory(opts.root)) {
      std::cerr << "pasched-srclint: fixture corpus not found at " << opts.root
                << "\n";
      return 64;
    }
  } else {
    opts.compile_db = flags.get("compile-db", "");
    if (opts.compile_db.empty()) {
      const std::filesystem::path guess =
          std::filesystem::path(opts.root) / "build/compile_commands.json";
      if (std::filesystem::exists(guess)) opts.compile_db = guess.string();
    }
  }
  opts.rules.only = split_commas(flags.get("only", ""));
  for (const std::string& id : opts.rules.only) {
    if (analysis::find_rule(id) == nullptr) {
      std::cerr << "pasched-srclint: unknown rule " << id << "\n";
      return 64;
    }
  }

  srclint::SrclintReport rep;
  try {
    if (!flags.positional().empty())
      rep = srclint::run_files(opts, flags.positional());
    else
      rep = srclint::run_tree(opts);
  } catch (const check::CheckError& e) {
    std::cerr << "pasched-srclint: model invariant violated: " << e.what()
              << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "pasched-srclint: " << e.what() << "\n";
    return 64;
  }

  std::cout << rep.str();
  const std::string report_file = flags.get("report", "");
  if (!report_file.empty()) {
    std::ofstream out(report_file);
    out << rep.str();
    std::cout << "report written to " << report_file << "\n";
  }
  const std::string json_file = flags.get("json", "");
  if (!json_file.empty()) {
    std::ofstream out(json_file);
    out << rep.json();
    std::cout << "json written to " << json_file << "\n";
  }
  if (rep.clean()) {
    std::cout << "pasched-srclint: PASS\n";
    return 0;
  }
  return analysis::any_errors(rep.findings) ? 1 : 0;
}
