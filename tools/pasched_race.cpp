// pasched-race: the shard-ownership and determinism auditor for the
// partitioned execution core.
//
// Runs the paper's scenario shapes (fig3 = vanilla kernel, fig5 = prototype
// kernel + co-scheduler) under the partitioned engine with the ownership
// annotation layer armed and a vector-clock monitor on every cross-shard
// seam. Any mutation of shard-owned state from the wrong worker, any
// unordered cross-shard access pair, and any delivery into a shard's past
// becomes a PSL2xx diagnostic with shard/object/epoch attribution.
//
//   ./pasched-race [--scenario=fig3|fig5|both] [--workers=N] [--nodes=N]
//       [--tasks-per-node=N] [--calls=N] [--seed=N]
//
// With --fuzz-windows=N each scenario additionally runs N window
// perturbations: conservative windows are shrunk toward the legal minimum
// through the sim::ChoiceSource seam, and every perturbed run must
// reproduce the unperturbed canonical digest (PSL204 on divergence, with
// the recorded schedule written next to the report for --replay).
//
//   ./pasched-race --fuzz-windows=200 [--report=FILE]
//   ./pasched-race --replay=SCHEDULE_FILE --scenario=fig3
//
// --plant-cross-shard-write injects the CI regression fault: an event on
// shard 0 mutates node 1's kernel without going through the router; the
// auditor must flag it (exit 1). Planted runs force --workers=1 so the
// *logical* violation is caught without a physical data race.
//
// Exit status: 0 = no findings, 1 = PSL2xx ERROR findings, 2 = a model
// invariant is violated, 64 = bad usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "apps/aggregate_trace.hpp"
#include "check/check.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "mc/schedule.hpp"
#include "race/fuzz.hpp"
#include "util/flags.hpp"

using namespace pasched;

namespace {

struct Params {
  int nodes = 4;
  int tasks_per_node = 16;
  int calls = 120;
  std::uint64_t seed = 1;
  int workers = 4;
  int fuzz = 0;
  bool plant = false;
  std::string scenario = "both";
  std::string report;
  std::string replay;
};

struct Scenario {
  const char* name;
  core::SimulationConfig cfg;
  mpi::WorkloadFactory factory;
};

Scenario make_scenario(const Params& p, bool prototype) {
  Scenario s;
  s.name = prototype ? "fig5-prototype+cosched" : "fig3-vanilla";
  s.cfg.cluster = cluster::presets::frost(p.nodes);
  s.cfg.cluster.seed = p.seed;
  s.cfg.cluster.node.tunables =
      prototype ? core::prototype_kernel() : core::vanilla_kernel();
  s.cfg.job.ntasks = p.nodes * p.tasks_per_node;
  s.cfg.job.tasks_per_node = p.tasks_per_node;
  s.cfg.job.seed = p.seed;
  s.cfg.use_coscheduler = prototype;
  s.cfg.cosched = core::paper_cosched();

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = p.calls;
  at.warmup = sim::Duration::sec(6);
  s.factory = apps::aggregate_trace(at);
  return s;
}

void print_findings(std::ostream& os,
                    const std::vector<analysis::Diagnostic>& findings) {
  for (const analysis::Diagnostic& d : findings) os << "  " << d.str() << "\n";
}

/// Findings across every audited scenario, for --json=FILE.
std::vector<analysis::Diagnostic> g_collected;

void write_json(const std::string& path, int rc) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "pasched-race: cannot write " << path << "\n";
    return;
  }
  out << "{\n  " << analysis::json_report_header("pasched-race") << "\n"
      << "  \"pass\": " << (rc == 0 ? "true" : "false") << ",\n"
      << "  \"findings\": " << analysis::diagnostics_json(g_collected, 2)
      << "\n}\n";
  std::cout << "json report written to " << path << "\n";
}

/// Audits one scenario; returns the exit code contribution (0 or 1).
int run_one(const Scenario& s, const Params& p, std::ostream& report) {
  std::cout << "scenario " << s.name << ": audit (workers=" << p.workers
            << ")..." << std::flush;
  report << "== " << s.name << " ==\n";

  std::vector<analysis::Diagnostic> findings;
  if (p.fuzz > 0) {
    const race::FuzzResult fz =
        race::fuzz_windows(s.cfg, s.factory, p.fuzz, p.seed, p.workers);
    std::cout << " " << fz.runs << " runs (baseline + " << p.fuzz
              << " perturbations), base hash=" << std::hex << fz.base_hash
              << std::dec << "\n";
    findings = fz.findings;
    if (fz.diverged) {
      const std::string sched_file =
          std::string("pasched-race.") + s.name + ".failing-schedule";
      std::ofstream sf(sched_file);
      sf << fz.failing.serialize();
      std::cout << "  failing window schedule written to " << sched_file
                << "\n";
      report << "failing schedule:\n" << fz.failing.serialize() << "\n";
    }
  } else {
    race::AuditOptions opt;
    opt.workers = p.plant ? 1 : p.workers;
    opt.plant_cross_shard_write = p.plant;
    const race::AuditRun run = race::run_audited(s.cfg, s.factory, opt);
    std::cout << " hash=" << std::hex << run.digest.hash << std::dec
              << " posts=" << run.stats.posts << " admits=" << run.stats.admits
              << " windows=" << run.stats.windows
              << " horizon_publishes=" << run.stats.horizon_publishes
              << " horizon_waits=" << run.stats.horizon_waits << "\n";
    findings = run.findings;
  }

  print_findings(report, findings);
  g_collected.insert(g_collected.end(), findings.begin(), findings.end());
  if (findings.empty()) {
    std::cout << "  OK: no PSL2xx findings\n";
    report << "clean\n";
    return 0;
  }
  std::cout << "  FINDINGS (" << findings.size() << "):\n";
  print_findings(std::cout, findings);
  return analysis::any_errors(findings) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::vector<std::string> typos = flags.unknown(
      {"scenario", "workers", "nodes", "tasks-per-node", "calls", "seed",
       "fuzz-windows", "plant-cross-shard-write", "report", "replay", "json"});
  if (!typos.empty()) {
    std::cerr << "pasched-race: unknown flag(s):";
    for (const std::string& t : typos) std::cerr << " --" << t;
    std::cerr << "\nusage: pasched-race [--scenario=fig3|fig5|both]"
                 " [--workers=N] [--nodes=N] [--tasks-per-node=N] [--calls=N]"
                 " [--seed=N] [--fuzz-windows=N] [--plant-cross-shard-write]"
                 " [--report=FILE] [--replay=SCHEDULE_FILE] [--json=FILE]\n";
    return 64;
  }
  Params p;
  p.nodes = static_cast<int>(flags.get_int("nodes", p.nodes));
  p.tasks_per_node =
      static_cast<int>(flags.get_int("tasks-per-node", p.tasks_per_node));
  p.calls = static_cast<int>(flags.get_int("calls", p.calls));
  p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  p.workers = static_cast<int>(flags.get_int("workers", p.workers));
  p.fuzz = static_cast<int>(flags.get_int("fuzz-windows", 0));
  p.plant = flags.get_bool("plant-cross-shard-write", false);
  p.scenario = flags.get("scenario", "both");
  p.report = flags.get("report", "");
  p.replay = flags.get("replay", "");
  if (p.nodes < 2 || p.tasks_per_node < 1 || p.calls < 1 || p.workers < 1 ||
      p.fuzz < 0) {
    std::cerr << "pasched-race: --nodes must be >= 2 (the partitioned core "
                 "needs shards to cross) and --tasks-per-node/--calls/"
                 "--workers positive\n";
    return 64;
  }
  if (p.scenario != "fig3" && p.scenario != "fig5" && p.scenario != "both") {
    std::cerr << "pasched-race: --scenario must be fig3, fig5 or both\n";
    return 64;
  }
  if (!p.replay.empty() && p.scenario == "both") {
    std::cerr << "pasched-race: --replay needs a single --scenario\n";
    return 64;
  }

  std::ostringstream report;
  int rc = 0;
  try {
    if (!p.replay.empty()) {
      std::ifstream in(p.replay);
      if (!in) {
        std::cerr << "pasched-race: cannot read " << p.replay << "\n";
        return 64;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      const mc::Schedule sched = mc::Schedule::parse(buf.str());
      const Scenario s = make_scenario(p, p.scenario == "fig5");
      std::cout << "replaying " << sched.size() << " window choices on "
                << s.name << "\n";
      const race::AuditRun run =
          race::replay_schedule(s.cfg, s.factory, sched, p.workers);
      std::cout << "  hash=" << std::hex << run.digest.hash << std::dec
                << "\n";
      print_findings(std::cout, run.findings);
      print_findings(report, run.findings);
      g_collected.insert(g_collected.end(), run.findings.begin(),
                         run.findings.end());
      rc = analysis::any_errors(run.findings) ? 1 : 0;
    } else {
      if (p.scenario != "fig5")
        rc = std::max(rc, run_one(make_scenario(p, false), p, report));
      if (p.scenario != "fig3")
        rc = std::max(rc, run_one(make_scenario(p, true), p, report));
    }
  } catch (const check::CheckError& e) {
    std::cerr << "pasched-race: model invariant violated: " << e.what()
              << "\n";
    return 2;
  }

  if (!p.report.empty()) {
    std::ofstream out(p.report);
    out << report.str();
    std::cout << "report written to " << p.report << "\n";
  }
  const std::string json_path = flags.get("json", "");
  if (!json_path.empty()) write_json(json_path, rc);
  if (rc == 0) std::cout << "pasched-race: PASS\n";
  return rc;
}
