// pasched-alloc: allocation & memory-layout analyzer + runtime allocation
// ledger for the event hot path (PSL601-606).
//
// Where pasched-contend audits *serialization* (who waits on whom), alloc
// audits *allocation*: the heap traffic and cache layout that decide
// whether the per-event core stays at nanoseconds per event once the
// partitioned engine actually scales (the paper's overhead-sensitivity
// argument, §3.1.1/§5):
//
//   PSL601  heap allocation in a hot/lifecycle engine function       (ERROR)
//   PSL602  undisciplined container growth on the hot path           (ERROR)
//   PSL603  cache-layout hazard in an event/shard-resident type      (WARN)
//   PSL604  PASCHED_ARENA contract violation                         (ERROR)
//   PSL605  allocation-free region statically certified              (INFO)
//   PSL606  runtime-refuted allocation-free claim                    (ERROR)
//
//   ./pasched-alloc [--root=DIR] [--compile-db=FILE] [--only=PSL60x[,..]]
//       [--report=FILE] [--json=FILE] [--list-rules] [files...]
//   ./pasched-alloc --ledger [--nodes=N] [--workers=N] [--calls=N]
//       [--seed=N] [--json=FILE] [--max-hot-window-allocs=N]
//   ./pasched-alloc --plant [--fixtures=DIR]
//
// The default mode statically scans the tree under --root (reusing the
// srclint frontend and compile_commands.json discovery) and emits a PSL605
// claim for every PASCHED_HOT function that scans clean. --ledger
// additionally runs the fig5 aggregate-trace scenario on the partitioned
// core with the global operator new/delete hook counting, splits every
// allocation into (site, hot|cold) buckets, and cross-checks each PSL605
// claim against the observed Core rows (PSL606 on refutation) — the same
// certify-then-verify contract as pasched-contend's PSL505/506. --plant
// scans the planted-violation corpus and refutes a fabricated claim
// against a deliberately allocating hot scope, so one invocation
// demonstrates all six rules; CI asserts it exits 1.
//
// Findings are silenced per line with `// srclint-ok(PSLnnn): reason`
// (which also forfeits the enclosing function's PSL605 claim).
// Exit status: 0 = no ERROR findings, 1 = ERROR findings, 2 = internal
// model violation, 64 = bad usage.
#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/ledger.hpp"
#include "alloc/runner.hpp"
#include "analysis/diagnostic.hpp"
#include "apps/aggregate_trace.hpp"
#include "check/check.hpp"
#include "core/presets.hpp"
#include "core/simulation.hpp"
#include "util/allocgate.hpp"
#include "util/flags.hpp"

using namespace pasched;

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

struct LedgerParams {
  int nodes = 8;    // fig5's cluster size
  int workers = 8;  // parallel8: one worker per node shard
  int calls = 120;
  std::uint64_t seed = 1;
};

/// Runs the fig5 prototype scenario on the partitioned core with the
/// allocation hook counting; returns the aggregated ledger report.
alloc::AllocLedgerReport run_fig5_ledger(const LedgerParams& p,
                                         alloc::Ledger& ledger) {
  core::SimulationConfig cfg;
  cfg.cluster = cluster::presets::frost(p.nodes);
  cfg.cluster.seed = p.seed;
  cfg.cluster.node.tunables = core::prototype_kernel();
  cfg.job.ntasks = p.nodes * 16;
  cfg.job.tasks_per_node = 16;
  cfg.job.seed = p.seed;
  cfg.use_coscheduler = true;
  cfg.cosched = core::paper_cosched();
  cfg.parallel = p.workers;

  apps::AggregateTraceConfig at;
  at.loops = 1;
  at.calls_per_loop = p.calls;
  at.warmup = sim::Duration::sec(6);

  core::Simulation sim(cfg, apps::aggregate_trace(at));
  ledger.reset();
  ledger.install();
  sim.run();
  ledger.remove();
  return ledger.report();
}

#if PASCHED_VALIDATE_ENABLED
/// The --plant PSL606 leg: a deliberately allocating hot scope under a
/// Core site, refuting a fabricated allocation-free claim on that site.
alloc::AllocLedgerReport run_planted_ledger(alloc::Ledger& ledger) {
  ledger.reset();
  ledger.install();
  {
    PASCHED_ALLOC_HOT_SCOPE("PlantedHotPath");
    std::vector<int> spill;
    for (int i = 0; i < 64; ++i) spill.push_back(i);
    static volatile const void* sink;  // keep the allocation observable
    sink = spill.data();
    static_cast<void>(sink);
  }
  ledger.remove();
  return ledger.report();
}
#endif

void append_sorted(alloc::AllocReport& rep,
                   std::vector<analysis::Diagnostic> extra) {
  rep.findings.insert(rep.findings.end(),
                      std::make_move_iterator(extra.begin()),
                      std::make_move_iterator(extra.end()));
  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const analysis::Diagnostic& a,
                      const analysis::Diagnostic& b) {
                     return a.subject != b.subject ? a.subject < b.subject
                                                   : a.rule < b.rule;
                   });
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::vector<std::string> typos = flags.unknown(
      {"root", "compile-db", "only", "report", "json", "list-rules", "plant",
       "fixtures", "ledger", "nodes", "workers", "calls", "seed",
       "max-hot-window-allocs"});
  if (!typos.empty()) {
    std::cerr << "pasched-alloc: unknown flag(s):";
    for (const std::string& t : typos) std::cerr << " --" << t;
    std::cerr << "\nusage: pasched-alloc [--root=DIR] [--compile-db=FILE]"
                 " [--only=PSL60x[,...]] [--report=FILE] [--json=FILE]"
                 " [--list-rules] [files...]\n"
                 "       pasched-alloc --ledger [--nodes=N] [--workers=N]"
                 " [--calls=N] [--seed=N] [--json=FILE]"
                 " [--max-hot-window-allocs=N]\n"
                 "       pasched-alloc --plant [--fixtures=DIR]\n";
    return 64;
  }
  if (flags.get_bool("list-rules", false)) {
    for (const analysis::RuleInfo& r : analysis::all_rules()) {
      const std::string id(r.id);
      if (id.size() == 6 && id.compare(0, 4, "PSL6") == 0)
        std::cout << id << "  " << analysis::to_string(r.severity)
                  << "\n    invariant: " << r.invariant
                  << "\n    paper:     " << r.paper_ref << "\n";
    }
    return 0;
  }

  alloc::AllocOptions opts;
  opts.root = flags.get("root", ".");
  const bool plant = flags.get_bool("plant", false);
  const bool ledger_mode = flags.get_bool("ledger", false);
  if (plant) {
    opts.root = flags.get(
        "fixtures",
        (std::filesystem::path(opts.root) / "tests/alloc/fixtures").string());
    if (!std::filesystem::is_directory(opts.root)) {
      std::cerr << "pasched-alloc: fixture corpus not found at " << opts.root
                << "\n";
      return 64;
    }
  } else {
    opts.compile_db = flags.get("compile-db", "");
    if (opts.compile_db.empty()) {
      const std::filesystem::path guess =
          std::filesystem::path(opts.root) / "build/compile_commands.json";
      if (std::filesystem::exists(guess)) opts.compile_db = guess.string();
    }
  }
  opts.cfg.only = split_commas(flags.get("only", ""));
  for (const std::string& id : opts.cfg.only) {
    if (analysis::find_rule(id) == nullptr) {
      std::cerr << "pasched-alloc: unknown rule " << id << "\n";
      return 64;
    }
  }

  LedgerParams lp;
  lp.nodes = static_cast<int>(flags.get_int("nodes", lp.nodes));
  lp.workers = static_cast<int>(flags.get_int("workers", lp.workers));
  lp.calls = static_cast<int>(flags.get_int("calls", lp.calls));
  lp.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  if (lp.nodes < 2 || lp.workers < 1 || lp.calls < 1) {
    std::cerr << "pasched-alloc: --nodes must be >= 2 and --workers/--calls "
                 "positive\n";
    return 64;
  }

  alloc::AllocReport rep;
  alloc::Ledger ledger;
  alloc::AllocLedgerReport lrep;
  bool ledger_ran = false;
  try {
    if (!flags.positional().empty())
      rep = alloc::run_files(opts, flags.positional());
    else
      rep = alloc::run_tree(opts);

    if (plant) {
      // The PSL606 leg: a hot scope that allocates on purpose, checked
      // against a fabricated allocation-free claim on the same Core site.
#if PASCHED_VALIDATE_ENABLED
      lrep = run_planted_ledger(ledger);
      ledger_ran = true;
      std::vector<alloc::AllocClaim> planted = rep.claims;
      planted.push_back(alloc::AllocClaim{
          "PlantedHotPath", "tests/alloc/fixtures/planted-claim", 1});
      append_sorted(rep, ledger.check_claims(planted));
#else
      std::cout << "pasched-alloc: PSL606 leg skipped (the operator "
                   "new/delete hook is compiled out under "
                   "-DPASCHED_VALIDATE=OFF)\n";
#endif
    } else if (ledger_mode) {
#if PASCHED_VALIDATE_ENABLED
      lrep = run_fig5_ledger(lp, ledger);
      ledger_ran = true;
      append_sorted(rep, ledger.check_claims(rep.claims));
#endif
    }
  } catch (const check::CheckError& e) {
    std::cerr << "pasched-alloc: model invariant violated: " << e.what()
              << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "pasched-alloc: " << e.what() << "\n";
    return 64;
  }

  std::cout << rep.str();
  if (ledger_ran) {
    std::cout << lrep.str();
    if (lrep.sites.empty())
      std::cout << "pasched-alloc: ledger recorded nothing (no attributed "
                   "allocation observed)\n";
  } else if (ledger_mode) {
    std::cout << "pasched-alloc: ledger unavailable under "
                 "-DPASCHED_VALIDATE=OFF (the operator new/delete hook is "
                 "compiled out)\n";
  }

  const std::string report_file = flags.get("report", "");
  if (!report_file.empty()) {
    std::ofstream out(report_file);
    out << rep.str();
    if (ledger_ran) out << lrep.str();
    std::cout << "report written to " << report_file << "\n";
  }
  const std::string json_file = flags.get("json", "");
  if (!json_file.empty()) {
    std::ofstream out(json_file);
    std::string js = rep.json();
    if (ledger_ran) {
      // Splice the ledger object into the report before the closing brace.
      const std::size_t pos = js.rfind("\n}");
      js.insert(pos, ",\n  \"ledger\": " + lrep.json(2));
    }
    out << js;
    std::cout << "json written to " << json_file << "\n";
  }

  // Allocation regression gate (the nightly CI wiring): hot_window_allocs
  // counts hot-phase heap traffic on Core (engine/kernel bookkeeping)
  // sites. The event slab and scratch-reuse discipline exist to hold it at
  // zero — fail loudly if a regression puts malloc back on the event path.
  const long long max_hot = flags.get_int("max-hot-window-allocs", -1);
  if (max_hot >= 0 && ledger_ran &&
      lrep.hot_window_allocs > static_cast<std::uint64_t>(max_hot)) {
    std::cout << "pasched-alloc: FAIL (hot_window_allocs "
              << lrep.hot_window_allocs << " > " << max_hot << ")\n";
    return 1;
  }

  if (rep.clean()) {
    std::cout << "pasched-alloc: PASS\n";
    return 0;
  }
  return analysis::any_errors(rep.findings) ? 1 : 0;
}
