#!/usr/bin/env bash
# Runs clang-tidy (config: the repo's .clang-tidy) over every source file in
# src/ and tools/, using a compile_commands.json exported from a dedicated
# build tree. Exits non-zero if any diagnostic is emitted — CI treats tidy
# findings as errors.
#
# Usage: tools/run-clang-tidy.sh [build-dir]
#   CLANG_TIDY=clang-tidy-18 tools/run-clang-tidy.sh   # pick a binary
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-tidy"}"

find_tidy() {
  if [ -n "${CLANG_TIDY:-}" ]; then
    command -v "${CLANG_TIDY}" && return 0
  fi
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
              clang-tidy-16 clang-tidy-15; do
    command -v "${cand}" && return 0
  done
  return 1
}

tidy_bin="$(find_tidy)" || {
  echo "run-clang-tidy.sh: SKIP — no clang-tidy binary found on PATH" >&2
  echo "(install clang-tidy or set CLANG_TIDY=<binary>)" >&2
  exit 0
}
echo "using $("${tidy_bin}" --version | head -n 1)"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DPASCHED_BUILD_BENCH=OFF -DPASCHED_BUILD_EXAMPLES=OFF \
  -DPASCHED_BUILD_TESTS=OFF > /dev/null

mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/tools" \
  -name '*.cpp' | sort)

status=0
for src in "${sources[@]}"; do
  # tools/ sources are only in the compile database when tools build; pass
  # -p unconditionally and let clang-tidy resolve flags per file.
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "${src}"; then
    status=1
  fi
done

if [ "${status}" -ne 0 ]; then
  echo "run-clang-tidy.sh: FAIL — clang-tidy reported diagnostics" >&2
else
  echo "run-clang-tidy.sh: clean"
fi
exit "${status}"
