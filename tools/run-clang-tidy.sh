#!/usr/bin/env bash
# Runs clang-tidy (config: the repo's .clang-tidy) over every source file in
# src/, tools/, tests/ and bench/, using a compile_commands.json exported
# from a dedicated build tree. Exits non-zero if any diagnostic is emitted —
# CI treats tidy findings as errors.
#
# Usage: tools/run-clang-tidy.sh [build-dir]
#   CLANG_TIDY=clang-tidy-18 tools/run-clang-tidy.sh   # pick a binary
#   REQUIRE_TIDY=1 tools/run-clang-tidy.sh             # missing binary = FAIL
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-tidy"}"

find_tidy() {
  if [ -n "${CLANG_TIDY:-}" ]; then
    command -v "${CLANG_TIDY}" && return 0
  fi
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
              clang-tidy-16 clang-tidy-15; do
    command -v "${cand}" && return 0
  done
  return 1
}

tidy_bin="$(find_tidy)" || {
  if [ "${REQUIRE_TIDY:-0}" = "1" ]; then
    echo "run-clang-tidy.sh: FAIL — no clang-tidy binary found on PATH" >&2
    echo "(REQUIRE_TIDY=1 forbids skipping; install clang-tidy)" >&2
    exit 1
  fi
  echo "run-clang-tidy.sh: SKIP — no clang-tidy binary found on PATH" >&2
  echo "(install clang-tidy, set CLANG_TIDY=<binary>, or REQUIRE_TIDY=1" >&2
  echo " to make this an error)" >&2
  exit 0
}
echo "using $("${tidy_bin}" --version | head -n 1)"

# Tests and benches are analyzed too, so they must be in the compile
# database.
cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DPASCHED_BUILD_BENCH=ON -DPASCHED_BUILD_EXAMPLES=OFF \
  -DPASCHED_BUILD_TESTS=ON > /dev/null

mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/tools" \
  "${repo_root}/tests" "${repo_root}/bench" -name '*.cpp' | sort)

# Self-check the coverage: every subsystem must contribute at least one
# source. A directory silently dropping out of the sweep (a path typo, a
# rename, a new subsystem like src/mc or src/race landing after the script
# was written) is a coverage hole that looks exactly like "tidy is clean" —
# make it a hard failure instead.
required_dirs=(src/alloc src/analysis src/apps src/check src/cluster \
               src/contend src/core src/daemons src/kern src/mc src/mpi \
               src/net src/race src/scale src/sim src/srclint src/trace \
               src/util tools tests bench)
for dir in "${required_dirs[@]}"; do
  if ! printf '%s\n' "${sources[@]}" | grep -q "^${repo_root}/${dir}/"; then
    echo "run-clang-tidy.sh: FAIL — no sources found under ${dir}/" >&2
    echo "(new/renamed subsystem? update required_dirs and the sweep)" >&2
    exit 1
  fi
done
unexpected="$(find "${repo_root}/src" -mindepth 2 -name '*.cpp' \
  | sed -E "s|^${repo_root}/(src/[^/]+)/.*|\1|" | sort -u \
  | grep -v -F -x -f <(printf '%s\n' "${required_dirs[@]}") || true)"
if [ -n "${unexpected}" ]; then
  echo "run-clang-tidy.sh: FAIL — src subdirectories missing from" >&2
  echo "required_dirs (add them): ${unexpected}" >&2
  exit 1
fi
echo "coverage: ${#sources[@]} sources across ${#required_dirs[@]} directories"

status=0
for src in "${sources[@]}"; do
  # tools/ sources are only in the compile database when tools build; pass
  # -p unconditionally and let clang-tidy resolve flags per file.
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "${src}"; then
    status=1
  fi
done

if [ "${status}" -ne 0 ]; then
  echo "run-clang-tidy.sh: FAIL — clang-tidy reported diagnostics" >&2
else
  echo "run-clang-tidy.sh: clean"
fi
exit "${status}"
